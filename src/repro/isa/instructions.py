"""Opcodes and the instruction container.

The machine has 16 integer registers, ``r0`` .. ``r15``.  By convention
(enforced by the toolchain, not the hardware):

- ``r0`` holds function return values,
- ``r1`` .. ``r6`` carry arguments and are caller-saved,
- ``r7`` .. ``r12`` are callee-saved temporaries,
- ``r13`` (:data:`REG_RET`) is scratch used during call sequences,
- ``r14`` (:data:`REG_FP`) is the frame pointer,
- ``r15`` (:data:`REG_SP`) is the stack pointer.

Words are 8 bytes.  Memory is byte-addressable; ``LOAD``/``STORE`` move
words, ``LOADB``/``STOREB`` move single bytes.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional

NUM_REGS = 16
REG_RET = 13
REG_FP = 14
REG_SP = 15

WORD_SIZE = 8


class Op(IntEnum):
    """Operation codes.

    The numeric values are dense so interpreters can dispatch on ``int``
    comparisons; never rely on specific values across versions.
    """

    # Register-immediate moves.
    CONST = 0  # rd <- imm
    MOV = 1  # rd <- ra

    # Three-address register-register ALU.
    ADD = 2
    SUB = 3
    MUL = 4
    DIV = 5  # truncating toward zero; divide by zero traps
    MOD = 6
    AND = 7
    OR = 8
    XOR = 9
    SHL = 10
    SHR = 11  # logical shift right on 64-bit patterns
    SLT = 12  # rd <- 1 if ra < rb else 0
    SLE = 13
    SEQ = 14
    SNE = 15

    # Register-immediate ALU (rd <- ra <op> imm).
    ADDI = 16
    MULI = 17
    ANDI = 18
    ORI = 19
    XORI = 20
    SHLI = 21
    SHRI = 22
    SLTI = 23

    # Memory.
    LOAD = 24  # rd <- mem64[ra + imm]
    STORE = 25  # mem64[ra + imm] <- rb
    LOADB = 26  # rd <- mem8[ra + imm]
    STOREB = 27  # mem8[ra + imm] <- rb

    # Control transfer.  Branch/jump targets are block labels before
    # linking and absolute addresses afterwards.
    BEQZ = 28  # if ra == 0 jump target
    BNEZ = 29
    JMP = 30
    CALL = 31  # push return address, jump to function
    RET = 32  # pop return address, jump to it

    # Misc.
    NOP = 33  # 1-byte padding; the linker's alignment tool
    HALT = 34


ALU_OPS = frozenset(
    {
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.DIV,
        Op.MOD,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.SHL,
        Op.SHR,
        Op.SLT,
        Op.SLE,
        Op.SEQ,
        Op.SNE,
    }
)

ALU_IMM_OPS = frozenset(
    {Op.ADDI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI, Op.SLTI}
)

MEMORY_OPS = frozenset({Op.LOAD, Op.STORE, Op.LOADB, Op.STOREB})

CONTROL_OPS = frozenset({Op.BEQZ, Op.BNEZ, Op.JMP, Op.CALL, Op.RET, Op.HALT})

#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Op.BEQZ, Op.BNEZ, Op.JMP, Op.RET, Op.HALT})

#: Map an ALU-immediate opcode to its register-register counterpart.
IMM_TO_REG = {
    Op.ADDI: Op.ADD,
    Op.MULI: Op.MUL,
    Op.ANDI: Op.AND,
    Op.ORI: Op.OR,
    Op.XORI: Op.XOR,
    Op.SHLI: Op.SHL,
    Op.SHRI: Op.SHR,
    Op.SLTI: Op.SLT,
}


class Instr:
    """One machine instruction.

    Operand fields are interpreted per opcode:

    - ``rd``: destination register (ALU, ``CONST``, ``MOV``, loads).
    - ``ra``: first source register; base register for memory ops;
      condition register for conditional branches.
    - ``rb``: second source register; value register for stores.
    - ``imm``: immediate operand / memory displacement.
    - ``target``: symbolic label (pre-link) for branches, jumps and calls.

    Instances are mutable on purpose: optimizer passes rewrite operands in
    place, and the linker patches ``target`` into resolved addresses via
    the side tables on :class:`~repro.isa.program.Executable`.
    """

    __slots__ = ("op", "rd", "ra", "rb", "imm", "target")

    def __init__(
        self,
        op: Op,
        rd: int = 0,
        ra: int = 0,
        rb: int = 0,
        imm: int = 0,
        target: Optional[str] = None,
    ) -> None:
        self.op = op
        self.rd = rd
        self.ra = ra
        self.rb = rb
        self.imm = imm
        self.target = target

    def copy(self) -> "Instr":
        """Return an independent copy of this instruction."""
        return Instr(self.op, self.rd, self.ra, self.rb, self.imm, self.target)

    def is_terminator(self) -> bool:
        """True if this instruction must end a basic block."""
        return self.op in TERMINATORS

    def is_branch(self) -> bool:
        """True for conditional branches (``BEQZ``/``BNEZ``)."""
        return self.op is Op.BEQZ or self.op is Op.BNEZ

    def reads(self) -> tuple:
        """Registers this instruction reads, as a tuple."""
        op = self.op
        if op in ALU_OPS:
            return (self.ra, self.rb)
        if op in ALU_IMM_OPS:
            return (self.ra,)
        if op is Op.MOV:
            return (self.ra,)
        if op is Op.LOAD or op is Op.LOADB:
            return (self.ra,)
        if op is Op.STORE or op is Op.STOREB:
            return (self.ra, self.rb)
        if op is Op.BEQZ or op is Op.BNEZ:
            return (self.ra,)
        return ()

    def writes(self) -> tuple:
        """Registers this instruction writes, as a tuple."""
        op = self.op
        if (
            op in ALU_OPS
            or op in ALU_IMM_OPS
            or op is Op.CONST
            or op is Op.MOV
            or op is Op.LOAD
            or op is Op.LOADB
        ):
            return (self.rd,)
        return ()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instr):
            return NotImplemented
        return (
            self.op == other.op
            and self.rd == other.rd
            and self.ra == other.ra
            and self.rb == other.rb
            and self.imm == other.imm
            and self.target == other.target
        )

    def __hash__(self) -> int:
        return hash((self.op, self.rd, self.ra, self.rb, self.imm, self.target))

    def __repr__(self) -> str:
        op = self.op
        name = op.name.lower()
        if op is Op.CONST:
            return f"{name} r{self.rd}, {self.imm}"
        if op is Op.MOV:
            return f"{name} r{self.rd}, r{self.ra}"
        if op in ALU_OPS:
            return f"{name} r{self.rd}, r{self.ra}, r{self.rb}"
        if op in ALU_IMM_OPS:
            return f"{name} r{self.rd}, r{self.ra}, {self.imm}"
        if op is Op.LOAD or op is Op.LOADB:
            return f"{name} r{self.rd}, [r{self.ra}{self.imm:+d}]"
        if op is Op.STORE or op is Op.STOREB:
            return f"{name} [r{self.ra}{self.imm:+d}], r{self.rb}"
        if op is Op.BEQZ or op is Op.BNEZ:
            return f"{name} r{self.ra}, {self.target}"
        if op is Op.JMP or op is Op.CALL:
            return f"{name} {self.target}"
        return name
