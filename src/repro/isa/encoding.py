"""Encoded byte sizes for instructions.

The simulator never materializes machine-code bytes; it only needs every
instruction's *size* so that the linker can assign realistic, irregular
addresses.  Sizes follow an x86-flavoured scheme:

- register-register ALU ops are compact (3 bytes),
- immediates grow the encoding (an immediate that fits in a signed byte
  costs 1 extra byte; otherwise 4 extra),
- memory operands pay for their displacement the same way,
- control transfers carry a 4-byte displacement,
- ``NOP`` is exactly 1 byte — it is the linker's padding unit,
- ``RET`` and ``HALT`` are 1 byte.

These constants are part of the architecture contract: tests assert them,
and changing them changes every layout-dependent measurement.
"""

from __future__ import annotations

from repro.isa.instructions import ALU_IMM_OPS, ALU_OPS, Instr, Op


def _fits_i8(value: int) -> bool:
    return -128 <= value <= 127


def encoded_size(instr: Instr) -> int:
    """Return the encoded size of ``instr`` in bytes."""
    op = instr.op
    if op is Op.NOP or op is Op.RET or op is Op.HALT:
        return 1
    if op is Op.MOV:
        return 2
    if op in ALU_OPS:
        return 3
    if op is Op.CONST:
        # A CONST carrying a relocation (symbolic address) always uses the
        # full-width encoding: the linker must be able to patch in any
        # address without changing layout.
        if instr.target is not None:
            return 6
        return 3 if _fits_i8(instr.imm) else 6
    if op in ALU_IMM_OPS:
        return 4 if _fits_i8(instr.imm) else 7
    if op is Op.LOAD or op is Op.STORE or op is Op.LOADB or op is Op.STOREB:
        return 3 if _fits_i8(instr.imm) else 6
    if op is Op.BEQZ or op is Op.BNEZ:
        return 5
    if op is Op.JMP or op is Op.CALL:
        return 5
    raise ValueError(f"unknown opcode: {op!r}")


def block_size(instrs) -> int:
    """Total encoded size of a sequence of instructions."""
    return sum(encoded_size(i) for i in instrs)
