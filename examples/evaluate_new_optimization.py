#!/usr/bin/env python
"""Evaluate "your" optimization the right way.

Scenario: you are a compiler engineer proposing a more aggressive
inliner + unroller (a custom vendor profile).  Should it ship?

The example contrasts the two evaluation styles on the full suite:

- the common practice: one setup per benchmark, report the speedups;
- the paper's practice: randomized setups with confidence intervals —
  some wins evaporate into "inconclusive", which is the honest answer.

Run:  python examples/evaluate_new_optimization.py   (takes a few minutes)
"""

from repro import (
    CompilerProfile,
    Experiment,
    ExperimentalSetup,
    evaluate_with_randomization,
    geometric_mean,
    workloads,
)
from repro.core.report import render_table

#: "Your" proposal: gcc, but inlining much more and unrolling by 8.
AGGRESSIVE = CompilerProfile(
    name="gcc-aggressive",
    inline_threshold=(0, 0, 24, 48),
    unroll_factor=(1, 1, 4, 8),
    promote_registers=(0, 4, 4, 4),
    cache_global_bases=(0, 0, 2, 2),
    schedule=(False, False, False, True),
    loop_alignment=(1, 1, 1, 1),
)

#: Subset keeping the example affordable; drop the list to run everything.
SUBSET = ("perlbench", "sphinx3", "libquantum", "hmmer", "lbm")


def main() -> None:
    base = ExperimentalSetup(compiler="gcc", opt_level=3)
    treatment = base.with_changes(compiler=AGGRESSIVE)

    naive_rows = []
    honest_rows = []
    naive_speedups = []
    for name in SUBSET:
        exp = Experiment(workloads.get(name), size="test", seed=0)

        # Style 1: one arbitrary setup.
        s = exp.speedup(base, treatment)
        naive_speedups.append(s)
        naive_rows.append(
            [name, f"{s:.4f}", "ship it!" if s > 1 else "regression"]
        )

        # Style 2: randomized setups + interval.
        ev = evaluate_with_randomization(
            exp, base, treatment, n_setups=8, seed=3
        )
        honest_rows.append(
            [
                name,
                f"{ev.mean:.4f}",
                f"[{ev.interval.lo:.4f}, {ev.interval.hi:.4f}]",
                ev.verdict,
            ]
        )

    print(
        render_table(
            ["benchmark", "speedup", "verdict"],
            naive_rows,
            title="style 1 — single setup per benchmark",
        )
    )
    print(
        f"\n  geometric mean: {geometric_mean(naive_speedups):.4f}"
        "  <- the number that goes in the paper...\n"
    )
    print(
        render_table(
            ["benchmark", "mean speedup", "95% CI", "verdict"],
            honest_rows,
            title="style 2 — randomized setups (the paper's protocol)",
        )
    )
    print(
        "\nStyle 2's verdicts come with calibrated uncertainty: when an"
        "\ninterval includes 1.0 the honest answer is 'inconclusive', and"
        "\nany style-1 verdict on that benchmark was measurement bias"
        "\nwearing a lab coat.  (Here the proposal's effect exceeds the"
        "\nbias on most benchmarks — the intervals are how you *know*.)"
    )


if __name__ == "__main__":
    main()
