#!/usr/bin/env python
"""Use the substrate directly: compile, link, load and run your own minic.

The bias methodology sits on a complete toolchain you can drive yourself.
This example writes a two-module program, compiles it at two levels,
links it in two orders, inspects the layout, and runs it on all three
machine models.

Run:  python examples/build_and_inspect.py
"""

from repro import compile_program, get_machine, link
from repro.analysis import function_placement_table, loop_heads
from repro.arch import execute
from repro.os import Environment, load_process

SOURCES = {
    "mathlib": """
int table[256];

func fill(n) {
    var i;
    for (i = 0; i < n; i = i + 1) {
        table[i] = (i * 37 + 11) & 1023;
    }
    return 0;
}

func checksum(n) {
    var i; var s;
    s = 0;
    for (i = 0; i < n; i = i + 1) {
        s = s + table[i] * (i & 7);
    }
    return s;
}
""",
    "main": """
int table[256];

func main() {
    fill(256);
    return checksum(256);
}
""",
}


def main() -> None:
    print("=== compile at O0 and O3 ===")
    for level in (0, 3):
        modules = compile_program(SOURCES, opt_level=level, profile="gcc")
        exe = link(modules)
        img = load_process(exe, Environment.typical())
        res = execute(img, get_machine("core2").build())
        print(
            f"  O{level}: exit={res.exit_value}  "
            f"instructions={res.counters.instructions:,}  "
            f"cycles={res.counters.cycles:,.0f}"
        )

    print("\n=== the same binary in two link orders ===")
    modules = compile_program(SOURCES, opt_level=2)
    for order in (["mathlib", "main"], ["main", "mathlib"]):
        exe = link(modules, order=order)
        print(f"  order {order}:")
        for name, module, base, size in function_placement_table(exe):
            print(f"    {name:10s} ({module:8s}) @ {base:#08x}  {size:4d} bytes")

    print("\n=== loop heads and their fetch-window phases ===")
    exe = link(modules)
    for head in loop_heads(exe):
        print(
            f"  {head.function:10s} @ {head.address:#08x}  "
            f"window offset {head.window_offset:2d}  "
            f"body {head.body_instructions} instructions"
        )

    print("\n=== one binary, three machine models ===")
    img = load_process(exe, Environment.typical())
    for machine in ("core2", "pentium4", "m5_o3cpu"):
        res = execute(img, get_machine(machine).build())
        c = res.counters
        print(
            f"  {machine:9s} cycles={c.cycles:9.0f}  CPI={c.cpi:.2f}  "
            f"mispredicts={c.mispredicts}"
        )
    print("\nSame answer everywhere; different time everywhere — that gap")
    print("is where measurement bias lives.")


if __name__ == "__main__":
    main()
