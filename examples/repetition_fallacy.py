#!/usr/bin/env python
"""The repetition fallacy: why "we ran it 30 times" does not fix bias.

Two labs benchmark the *same binary* of the same program.  Each lab runs
it many times on a quiet machine (small, realistic noise), computes a
95% confidence interval, and publishes.  Their intervals are tight,
non-overlapping — and contradictory, because each lab's UNIX environment
froze a different stack alignment for every one of its runs.

Then the paper's protocol resolves the dispute.

Run:  python examples/repetition_fallacy.py
"""

from repro import (
    Experiment,
    ExperimentalSetup,
    evaluate_with_randomization,
    workloads,
)
from repro.core.noise import NoiseModel, bias_vs_noise_demo
from repro.core.report import render_interval_row


def main() -> None:
    exp = Experiment(workloads.get("sphinx3"), size="test", seed=0)
    o2 = ExperimentalSetup(opt_level=2)

    lab_a = o2.with_changes(env_bytes=104)  # happens to align the stack
    lab_b = o2.with_changes(env_bytes=100)  # happens not to

    print("two labs, same program, same binary, 12 repetitions each")
    print("(each lab's environment is frozen for the whole session):\n")
    demo = bias_vs_noise_demo(
        exp,
        [lab_a, lab_b],
        repetitions=12,
        noise=NoiseModel(magnitude=0.005, seed=7),
    )
    values = [
        v for m in demo.measurements for v in (m.interval.lo, m.interval.hi)
    ]
    scale = (min(values) * 0.999, max(values) * 1.001)
    for label, m in zip(("lab A", "lab B"), demo.measurements):
        print(
            render_interval_row(
                f"  {label}",
                m.interval.lo,
                m.mean,
                m.interval.hi,
                scale=scale,
            )
        )
    print()
    if demo.repetition_misleads:
        print("the intervals are DISJOINT: both labs are statistically")
        print("confident, and they disagree about the same binary.")
        gap = abs(demo.measurements[0].mean - demo.measurements[1].mean)
        print(f"(the {gap:.0f}-cycle gap is bias, not noise — repetition")
        print(" only measured each lab's precision)\n")

    print("the paper's protocol — diversify the setup instead:")
    o3 = o2.with_changes(opt_level=3)
    ev = evaluate_with_randomization(exp, o2, o3, n_setups=10, seed=2)
    print(f"  {ev.summary_line()}")
    print(
        "\nmoral: within-setup statistics measure precision; only setup"
        "\ndiversity measures accuracy."
    )


if __name__ == "__main__":
    main()
