#!/usr/bin/env python
"""A multi-host sweep, self-contained on loopback.

The paper's remedy — randomize the experimental setup, report a
confidence interval — multiplies the number of measurements, and the
natural next step is to spread them across machines.  This example runs
the randomized-evaluation campaign for sphinx3 through two TCP sweep
agents and shows the three properties the distributed layer promises
(docs/distributed.md):

1. the distributed report is byte-identical to a serial local run —
   distribution never changes the answer;
2. the confidence interval comes out of the same warmed measurement
   cache, so the paper's protocol is unchanged;
3. the run's provenance names every host that served a result.

Here both "hosts" are `AgentServer`s on 127.0.0.1 inside this process
(threads), so the demo needs nothing but loopback.  On real machines the
only difference is `python -m repro agent --listen 0.0.0.0:9000 --jobs 4`
on each worker host and their addresses in `--hosts`.

Run:  python examples/distributed_sweep.py
"""

import threading

from repro import Experiment, ExperimentalSetup, workloads
from repro.core.distributed import AgentServer
from repro.core.randomization import (
    evaluate_with_randomization,
    paired_random_setups,
)
from repro.core.runner import RunnerConfig, SweepRunner

N_SETUPS = 6  # paired: 12 measurements dispatched across the agents


def start_agent(jobs: int) -> AgentServer:
    """Bind a loopback agent and serve it from a daemon thread."""
    server = AgentServer(jobs=jobs, quiet=True)
    server.bind()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def main() -> None:
    exp = Experiment(workloads.get("sphinx3"))
    base = ExperimentalSetup(opt_level=2)
    treatment = base.with_changes(opt_level=3)
    pairs = paired_random_setups(exp, base, treatment, N_SETUPS, seed=0)
    setups = [s for pair in pairs for s in pair]

    print("=== 1. the reference: the same sweep, serial and local ===")
    serial = SweepRunner(exp).run(setups)
    print(serial.report.summary_line(), "\n")

    print("=== 2. two sweep agents on loopback ===")
    agents = [start_agent(jobs=2), start_agent(jobs=2)]
    hosts = ",".join(f"{host}:{port}" for host, port in
                     (a.address for a in agents))
    print(f"agents listening: {hosts}\n")

    print("=== 3. the same sweep, dispatched over TCP ===")
    runner = SweepRunner(exp, RunnerConfig(hosts=hosts))
    distributed = runner.run(setups)
    print(distributed.report.summary_line())
    assert distributed.report.to_json() == serial.report.to_json()
    print("distributed report is byte-identical to the serial run\n")

    print("=== 4. the paper's protocol, on the warmed cache ===")
    ev = evaluate_with_randomization(
        exp, base, treatment, n_setups=N_SETUPS, seed=0
    )
    print(ev.summary_line(), "\n")

    print("=== 5. who measured what (manifest `hosts` section) ===")
    for entry in runner.hosts_served:
        print(
            f"  {entry['host']}:{entry['port']}  "
            f"pid={entry['pid']}  jobs={entry['jobs']}  "
            f"sessions={entry['sessions']}  results={entry['results']}"
        )

    for agent in agents:
        agent.stop()


if __name__ == "__main__":
    main()
