#!/usr/bin/env python
"""Diagnose a bias like a performance analyst: counters -> cause -> proof.

Scenario: a sweep shows that perlbench's runtime jumps around as the
environment grows.  This example walks the paper's section-4 workflow:

1. find the hot code (function-level profiling),
2. correlate hardware counters with cycles across the sweep (suspects),
3. decompose one bad-vs-good cycle delta exactly (the model is linear in
   its counters for same-binary runs),
4. *intervene*: force-align the stack and show the bias disappears —
   correlation upgraded to cause.

Run:  python examples/diagnose_bias.py
"""

from repro import Experiment, ExperimentalSetup, workloads
from repro.analysis import (
    attribute_delta,
    confirm_stack_alignment_cause,
    counter_correlations,
    hot_functions,
)
from repro.core.bias import env_size_study

ENV_SIZES = list(range(100, 196, 4))


def main() -> None:
    wl = workloads.get("perlbench")
    exp = Experiment(wl, size="test", seed=0)
    o2 = ExperimentalSetup(opt_level=2)
    o3 = o2.with_changes(opt_level=3)

    print("=== step 0: observe the bias ===")
    study = env_size_study(exp, o2, o3, ENV_SIZES)
    rep = study.base_bias()
    print(f"O2 cycles across {len(ENV_SIZES)} env sizes: "
          f"min={rep.stats.minimum:.0f} max={rep.stats.maximum:.0f} "
          f"({(rep.magnitude - 1) * 100:.1f}% swing)\n")

    print("=== step 1: where does the time go? ===")
    profiled = exp.run(o2.with_changes(env_bytes=100), profile_functions=True)
    for name, cycles in hot_functions(profiled, top=4):
        share = cycles / profiled.cycles
        print(f"  {name:16s} {share:6.1%} of cycles")
    print()

    print("=== step 2: which counters move with the bias? ===")
    for name, r in counter_correlations(study.base_measurements)[:5]:
        print(f"  {name:22s} r={r:+.3f}")
    print()

    print("=== step 3: decompose one bad-vs-good delta exactly ===")
    good = exp.run(o2.with_changes(env_bytes=104))
    bad = exp.run(o2.with_changes(env_bytes=100))
    att = attribute_delta(good, bad, o2.machine_config())
    print(f"  total: {att.total_delta:+.0f} cycles "
          f"(unexplained: {att.unexplained:+.1f})")
    for mechanism, cycles in att.ranked()[:4]:
        print(f"    {mechanism:22s} {cycles:+10.0f}")
    print()

    print("=== step 4: intervene to confirm the cause ===")
    result = confirm_stack_alignment_cause(
        exp, o2, o3, env_sizes=ENV_SIZES, aligned_to=64
    )
    print(f"  {result.summary_line()}")
    print(
        "\nConclusion: the environment size shifts the stack start, which"
        "\nchanges the alignment of stack-resident hot data — exactly the"
        "\npaper's diagnosis for perlbench."
    )


if __name__ == "__main__":
    main()
