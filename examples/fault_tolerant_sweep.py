#!/usr/bin/env python
"""Survive a flaky measurement campaign: retries, quarantine, resume.

A large bias sweep is exactly the kind of job that dies at 3 a.m.:
a build wedges, a counter comes back garbage, the machine reboots.
This example runs an environment-size sweep through the fault-tolerant
runner three times:

1. clean, in parallel — identical results to a serial sweep;
2. under an injected fault plan — transient faults are retried,
   permanent ones quarantined, and 100% of setups are accounted for;
3. killed halfway through, then resumed from its checkpoint journal —
   nothing is re-measured and the final table is byte-identical.

Run:  python examples/fault_tolerant_sweep.py
"""

import os
import tempfile

from repro import Experiment, ExperimentalSetup, workloads
from repro.core.runner import RunnerConfig, SweepRunner
from repro.faults import FaultPlan

SETUPS = [ExperimentalSetup(env_bytes=e) for e in range(100, 612, 64)]


def main() -> None:
    print("=== 1. parallel sweep, no faults ===")
    serial = SweepRunner(Experiment(workloads.get("sphinx3"))).run(SETUPS)
    parallel = SweepRunner(
        Experiment(workloads.get("sphinx3")), RunnerConfig(jobs=4)
    ).run(SETUPS)
    assert [m.cycles for m in parallel.ok] == [m.cycles for m in serial.ok]
    print(parallel.report.summary_line())
    print("parallel == serial: measurements are deterministic\n")

    print("=== 2. the same sweep on a flaky lab machine ===")
    plan = FaultPlan(
        seed=3,
        build_rate=0.2,      # occasional internal compiler error
        hang_rate=0.3,       # occasional wedged run (cycle watchdog)
        counter_rate=0.1,    # occasional corrupted counter readout
        transient_fraction=0.7,
    )
    flaky = SweepRunner(
        Experiment(workloads.get("sphinx3")),
        RunnerConfig(jobs=1, max_retries=2, backoff_base=0.0),
        fault_plan=plan,
    ).run(SETUPS)
    print(flaky.report.summary_line())
    rep = flaky.report
    assert rep.measured + rep.resumed + len(rep.quarantined) == rep.requested
    print("every setup accounted for; quarantined ones are listed, "
          "not silently dropped\n")

    print("=== 3. kill it halfway, resume from the journal ===")
    journal = os.path.join(tempfile.mkdtemp(), "sweep.jsonl")
    first = SweepRunner(
        Experiment(workloads.get("sphinx3")), journal_path=journal
    ).run(SETUPS)

    # Simulate the 3 a.m. crash: keep the journal header plus the first
    # half of the records, as if the process died mid-sweep.
    half = len(SETUPS) // 2
    lines = open(journal).read().splitlines()
    with open(journal, "w") as fh:
        fh.write("\n".join(lines[: 1 + half]) + "\n")
    print(f"crashed after {half}/{len(SETUPS)} setups; resuming...")

    resumed = SweepRunner(
        Experiment(workloads.get("sphinx3")), journal_path=journal
    ).run(SETUPS)
    print(resumed.report.summary_line())
    assert resumed.report.resumed == half
    assert resumed.report.measured == len(SETUPS) - half
    assert [m.cycles for m in resumed.ok] == [m.cycles for m in first.ok]
    print("resume re-measured only the missing half and reproduced the "
          "sweep exactly")

    print("\nCLI equivalents:")
    print("  python -m repro study sphinx3 env --jobs 4 --resume sweep.jsonl")
    print("  python -m repro randomized sphinx3 --jobs 4")


if __name__ == "__main__":
    main()
