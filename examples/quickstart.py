#!/usr/bin/env python
"""Quickstart: measure a program, then discover your conclusion is biased.

Walks the library's core loop in five minutes of compute:

1. pick a workload and an experimental setup,
2. ask the classic question — "is -O3 faster than -O2?",
3. change something *innocuous* (the UNIX environment size) and watch the
   answer change,
4. do what the paper recommends: randomize the setup and report a
   confidence interval.

Run:  python examples/quickstart.py
"""

from repro import (
    Experiment,
    ExperimentalSetup,
    evaluate_with_randomization,
    workloads,
)


def main() -> None:
    # -- 1. a workload and a setup -------------------------------------
    wl = workloads.get("perlbench")
    print(f"workload: {wl.name} — {wl.description}")
    print(f"modules:  {', '.join(wl.module_names())}\n")

    exp = Experiment(wl, size="test", seed=0)
    o2 = ExperimentalSetup(machine="core2", compiler="gcc", opt_level=2)
    o3 = o2.with_changes(opt_level=3)

    # -- 2. the single-setup experiment ---------------------------------
    m2 = exp.run(o2)
    m3 = exp.run(o3)
    print("single-setup experiment (default environment):")
    print(f"  O2: {m2.cycles:12.0f} cycles  ({m2.counters.instructions:,} instructions)")
    print(f"  O3: {m3.cycles:12.0f} cycles  ({m3.counters.instructions:,} instructions)")
    speedup = m2.cycles / m3.cycles
    print(f"  => speedup {speedup:.4f}: O3 {'helps' if speedup > 1 else 'hurts'}\n")

    # -- 3. the innocuous change ----------------------------------------
    print("same experiment, different UNIX environment sizes:")
    verdicts = set()
    for env_bytes in (100, 132, 164, 1040):
        s = exp.speedup(
            o2.with_changes(env_bytes=env_bytes),
            o3.with_changes(env_bytes=env_bytes),
        )
        verdict = "helps" if s > 1 else "hurts"
        verdicts.add(verdict)
        print(f"  env={env_bytes:5d} bytes  speedup {s:.4f}  -> O3 {verdict}")
    if len(verdicts) > 1:
        print("  !! the conclusion depends on the environment size — this")
        print("     is the paper's measurement bias, reproduced.\n")
    else:
        print()

    # -- 4. the remedy ---------------------------------------------------
    print("the paper's remedy — randomize the setup, report an interval:")
    ev = evaluate_with_randomization(exp, o2, o3, n_setups=10, seed=1)
    print(f"  {ev.summary_line()}")
    print(
        "\nEvery run above was verified against the workload's Python "
        "reference implementation."
    )


if __name__ == "__main__":
    main()
