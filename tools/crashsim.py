#!/usr/bin/env python
"""Crash-consistency harness: SIGKILL real sweeps at deterministic
barriers, resume them, and prove the recovery machinery airtight.

The robustness docs promise that a sweep killed at *any* instant can be
resumed without losing or changing data.  This tool makes that promise
executable.  It runs a real ``repro`` command in a subprocess with one
of four **barriers** monkeypatched into the product code, SIGKILLs the
process at the barrier, re-runs with the same ``--resume`` journal (or
restarts the service on the same workdir), and then asserts the
recovered state is *byte-identical* to what an uninterrupted run
produces:

``journal:N``
    SIGKILL immediately after the Nth journal record is durably
    appended — the classic "power cut between checkpoints".
``store-put:N``
    On the Nth content-addressed store put, leave a torn ``.tmp-`` file
    in the shard directory and SIGKILL *before* the atomic rename — a
    crash mid-put must never publish a partial entry.
``archive:N``
    On the Nth atomic archive write, persist half the payload to the
    temp file and SIGKILL before ``os.replace`` — readers must keep
    seeing the old state, and a re-run must converge.
``queue:N``
    SIGKILL a ``repro serve`` coordinator immediately after the Nth
    *lease* record lands durably in its study-queue WAL — mid-study,
    with agents registered and work in flight.  The harness restarts
    the service on the same workdir (its dial-in agents re-register on
    their own), resubmits the same spec, and asserts the finished
    report is byte-identical to a serial ``repro study`` — plus that
    the WAL holds exactly one ``complete`` record per setup (nothing
    double-counted, nothing dropped) and that ``repro fsck`` signs off
    on it.

Byte-identity cannot be asserted on the *resumed* report directly (it
legitimately says "resumed" where the reference says "measured"), so
each cycle compares two things instead:

1. the published stdout tables (minus the ``sweep:`` accounting line),
   which must not change at all, and
2. a **verification re-run** from each journal: re-running the
   reference sweep resumes everything from its journal, re-running the
   crash-recovered sweep resumes everything from *its* journal, and
   those two all-resumed reports must be byte-identical.

``sigstop`` mode covers the *coordinator* fault family instead: the
whole process group (parent + workers) is SIGSTOP'd mid-sweep for
longer than ``--hang-timeout``, then resumed.  Without the
supervisor's parent-stall re-baseline this manufactures heartbeat
false-positives — every worker looks hung, gets killed, and (with
``--max-respawns 0``) the sweep degrades; the run asserts the report
stays clean and byte-identical to the serial reference.

Usage (CI runs ``all``)::

    python tools/crashsim.py cycle --barrier journal:3 --workdir /tmp/cs
    python tools/crashsim.py sigstop --workdir /tmp/cs
    python tools/crashsim.py all --workdir /tmp/cs

Exit status: 0 when every assertion holds, 1 otherwise.  The ``child``
command is internal (the subprocess entry that installs the barrier).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import List, Optional, Tuple

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)

#: The standard 8-setup sweep every cycle exercises; ``@RUN@`` is
#: substituted with the per-phase run directory so reference, crash and
#: resume runs each get their own journal/store/report files.
DEFAULT_SPEC = (
    "study sphinx3 env --env-start 100 --env-stop 228 --env-step 32 "
    "--quiet --resume @RUN@/j.jsonl --store @RUN@/st "
    "--report-out @RUN@/rep.json"
)
ARCHIVE_SPEC = "archive sphinx3 @RUN@/arch.json"

#: The study the ``queue`` barrier submits to the service, as plain
#: spec flags shared verbatim between ``repro submit`` and the serial
#: ``repro study`` reference (that is what makes the byte-identity
#: comparison honest).
QUEUE_STUDY = "sphinx3 env --env-start 100 --env-stop 228 --env-step 32"

BARRIER_KINDS = ("journal", "store-put", "archive", "queue")


def parse_barrier(text: str) -> Tuple[str, int]:
    """``journal:3`` -> ("journal", 3), with loud validation."""
    kind, _, count = text.partition(":")
    if kind not in BARRIER_KINDS or not count.isdigit() or int(count) < 1:
        raise SystemExit(
            f"crashsim: bad barrier {text!r} (want KIND:N with KIND in "
            f"{'/'.join(BARRIER_KINDS)} and N >= 1)"
        )
    return kind, int(count)


# -- child side: install the barrier, then be the real CLI ------------------


def _die() -> None:
    """SIGKILL ourselves: no atexit, no finally, no flushing — exactly
    what a power cut looks like to the files we leave behind."""
    os.kill(os.getpid(), signal.SIGKILL)


def _torn_tmp(directory: str, prefix: str, content: str) -> None:
    """Persist a torn temp file the way a crash mid-write would: partial
    content, fsynced (it *will* survive), never renamed into place."""
    os.makedirs(directory or ".", exist_ok=True)
    fd, _ = tempfile.mkstemp(prefix=prefix, dir=directory or ".")
    with os.fdopen(fd, "w") as fh:
        fh.write(content)
        fh.flush()
        os.fsync(fh.fileno())


def install_barrier(kind: str, count: int) -> None:
    """Monkeypatch the product so the Nth event of ``kind`` is a crash."""
    calls = {"n": 0}
    if kind == "journal":
        from repro.core import runner

        orig_append = runner.Journal.append

        def journal_append(self, index, data, fault_key=None):
            orig_append(self, index, data, fault_key)
            calls["n"] += 1
            if calls["n"] >= count:
                _die()

        runner.Journal.append = journal_append
    elif kind == "store-put":
        from repro.store import backend as backend_mod

        orig_put = backend_mod.DiskBackend.put

        def disk_put(self, key, payload):
            calls["n"] += 1
            if calls["n"] >= count:
                shard = os.path.dirname(self._path(key))
                _torn_tmp(shard, ".tmp-", '{"sha256": "dead", "payload_')
                _die()
            return orig_put(self, key, payload)

        backend_mod.DiskBackend.put = disk_put
    elif kind == "queue":
        from repro.core import servicewal

        orig_append = servicewal.ServiceWAL.append

        def wal_append(self, record_kind, data):
            orig_append(self, record_kind, data)
            if record_kind == "lease":
                calls["n"] += 1
                if calls["n"] >= count:
                    _die()

        servicewal.ServiceWAL.append = wal_append
    else:  # archive
        from repro import storageio

        orig_write = storageio.atomic_write_text

        def atomic_write_text(path, text, key=""):
            calls["n"] += 1
            if calls["n"] >= count:
                _torn_tmp(
                    os.path.dirname(path),
                    f".tmp-{os.path.basename(path)}-",
                    text[: max(1, len(text) // 2)],
                )
                _die()
            return orig_write(path, text, key)

        storageio.atomic_write_text = atomic_write_text


def cmd_child(args: argparse.Namespace) -> int:
    """Internal subprocess entry: barrier in, then the real CLI."""
    install_barrier(*parse_barrier(args.barrier))
    from repro import cli

    return cli.main(args.repro_args)


# -- parent side: run, kill, resume, compare --------------------------------


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_STORE", None)  # never leak the operator's store in
    return env


def _run(
    argv: List[str], check: Optional[int] = 0, **popen_kw
) -> subprocess.CompletedProcess:
    proc = subprocess.run(
        argv, env=_env(), capture_output=True, text=True, **popen_kw
    )
    if check is not None and proc.returncode != check:
        raise AssertionError(
            f"command {' '.join(argv)} exited {proc.returncode}, "
            f"expected {check}\nstderr:\n{proc.stderr[-2000:]}"
        )
    return proc


def _repro(spec: str, run_dir: str, extra: str = "") -> List[str]:
    os.makedirs(run_dir, exist_ok=True)
    words = (spec + (" " + extra if extra else "")).split()
    return [sys.executable, "-m", "repro.cli"] + [
        w.replace("@RUN@", run_dir) for w in words
    ]


def _crashing(barrier: str, spec: str, run_dir: str) -> List[str]:
    os.makedirs(run_dir, exist_ok=True)
    return [
        sys.executable,
        os.path.abspath(__file__),
        "child",
        "--barrier",
        barrier,
        "--",
    ] + [w.replace("@RUN@", run_dir) for w in spec.split()]


def _tables(stdout: str) -> str:
    """The published stdout minus the ``sweep:`` accounting block —
    resumed-vs-measured counts legitimately differ across a crash
    cycle; the science tables must not."""
    lines = stdout.splitlines()
    out: List[str] = []
    skipping = False
    for line in lines:
        if line.startswith("sweep:"):
            skipping = True  # the summary block (and any degraded
            continue  # sub-lines) ends at the first unindented line
        if skipping and line.startswith("    "):
            continue
        skipping = False
        out.append(line)
    return "\n".join(out)


def _assert(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def _read(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def _fsck(paths: List[str]) -> None:
    proc = _run(
        [sys.executable, "-m", "repro.cli", "fsck"] + paths, check=None
    )
    _assert(
        proc.returncode == 0,
        f"repro fsck found unrepaired damage after recovery:\n{proc.stdout}",
    )


def run_cycle(barrier: str, workdir: str, spec: str) -> None:
    """One kill/resume cycle at ``barrier``; raises AssertionError on
    any divergence from the uninterrupted reference."""
    kind, _ = parse_barrier(barrier)
    if kind == "archive":
        _archive_cycle(barrier, workdir)
        return
    if kind == "queue":
        _queue_cycle(barrier, workdir)
        return
    tag = barrier.replace(":", "-")
    ref_dir = os.path.join(workdir, f"{tag}-ref")
    crash_dir = os.path.join(workdir, f"{tag}-crash")

    ref = _run(_repro(spec, ref_dir))
    crash = _run(_crashing(barrier, spec, crash_dir), check=None)
    _assert(
        crash.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL),
        f"barrier {barrier} did not SIGKILL the sweep "
        f"(exit {crash.returncode}); is the spec long enough?",
    )
    resumed = _run(_repro(spec, crash_dir))
    _assert(
        _tables(resumed.stdout) == _tables(ref.stdout),
        f"published tables diverged after {barrier} crash/resume",
    )
    report = json.loads(_read(os.path.join(crash_dir, "rep.json")))
    _assert(
        report["resumed"] > 0,
        f"resume after {barrier} re-measured everything (journal lost?)",
    )
    _assert(not report["degraded"], f"resume after {barrier} degraded")

    # Verification re-run: both journals now hold the complete sweep, so
    # re-running each resumes 100% — those reports must match to the byte.
    again_ref = _run(_repro(spec, ref_dir))
    again_crash = _run(_repro(spec, crash_dir))
    rep_a = _read(os.path.join(ref_dir, "rep.json"))
    rep_b = _read(os.path.join(crash_dir, "rep.json"))
    _assert(
        rep_a == rep_b,
        f"verification re-run reports differ after {barrier} cycle",
    )
    _assert(
        _tables(again_ref.stdout) == _tables(again_crash.stdout),
        f"verification re-run tables differ after {barrier} cycle",
    )
    _fsck(
        [
            os.path.join(crash_dir, "j.jsonl"),
            os.path.join(crash_dir, "st"),
        ]
    )


def _archive_cycle(barrier: str, workdir: str) -> None:
    """Archive barrier: the crash must leave only torn temp debris (the
    target archive never appears half-written), and a re-run must
    produce records byte-identical to the uninterrupted reference."""
    tag = barrier.replace(":", "-")
    ref_dir = os.path.join(workdir, f"{tag}-ref")
    crash_dir = os.path.join(workdir, f"{tag}-crash")
    _run(_repro(ARCHIVE_SPEC, ref_dir))
    crash = _run(_crashing(barrier, ARCHIVE_SPEC, crash_dir), check=None)
    _assert(
        crash.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL),
        f"barrier {barrier} did not SIGKILL the archive write",
    )
    target = os.path.join(crash_dir, "arch.json")
    _assert(
        not os.path.exists(target),
        "a torn archive was published despite the crash mid-write",
    )
    _assert(
        glob.glob(os.path.join(crash_dir, ".tmp-*")),
        "expected torn .tmp- debris from the crashed atomic write",
    )
    _run(_repro(ARCHIVE_SPEC, crash_dir))
    # Records are deterministic; the embedded manifests carry wall-clock
    # timestamps, so compare the measurement sections canonically.
    ref_records = json.loads(_read(os.path.join(ref_dir, "arch.json")))
    new_records = json.loads(_read(target))
    _assert(
        json.dumps(ref_records["measurements"], sort_keys=True)
        == json.dumps(new_records["measurements"], sort_keys=True),
        "re-written archive records differ from the reference",
    )
    _fsck([target])


def _free_port() -> int:
    """A currently-free loopback port (bind 0, read, close)."""
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_port_file(path: str, proc: subprocess.Popen) -> dict:
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path) as fh:
                return json.load(fh)
        _assert(
            proc.poll() is None,
            f"serve exited before binding its ports (exit {proc.poll()})",
        )
        time.sleep(0.05)
    raise AssertionError("serve never wrote its port file")


def _queue_cycle(barrier: str, workdir: str) -> None:
    """Kill ``repro serve`` after lease N, restart it on the same
    workdir, and prove the finished study byte-identical to a serial
    ``repro study`` — with exactly one WAL ``complete`` per setup."""
    tag = barrier.replace(":", "-")
    ref_dir = os.path.join(workdir, f"{tag}-ref")
    crash_dir = os.path.join(workdir, f"{tag}-crash")
    os.makedirs(ref_dir, exist_ok=True)
    os.makedirs(crash_dir, exist_ok=True)
    state_dir = os.path.join(crash_dir, "svc")
    http_port, agent_port = _free_port(), _free_port()
    serve_args = [
        "serve", "--workdir", state_dir,
        "--http", f"127.0.0.1:{http_port}",
        "--listen", f"127.0.0.1:{agent_port}",
        "--agentless-grace", "60",
        "--port-file", os.path.join(crash_dir, "ports.json"),
    ]
    submit_args = (
        ["submit"] + QUEUE_STUDY.split()
        + ["--http", f"127.0.0.1:{http_port}"]
    )
    procs: List[subprocess.Popen] = []

    def _spawn(argv: List[str]) -> subprocess.Popen:
        proc = subprocess.Popen(
            argv, env=_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        procs.append(proc)
        return proc

    try:
        serve = _spawn(
            [sys.executable, os.path.abspath(__file__), "child",
             "--barrier", barrier, "--"] + serve_args
        )
        _wait_port_file(os.path.join(crash_dir, "ports.json"), serve)
        for seed in (1, 2):
            _spawn(
                [sys.executable, "-m", "repro.cli", "agent",
                 "--connect", f"127.0.0.1:{agent_port}", "--jobs", "2",
                 "--backoff-seed", str(seed), "--quiet"]
            )
        _run(
            [sys.executable, "-m", "repro.cli"] + submit_args + ["--no-wait"]
        )
        serve.wait(timeout=180)
        _assert(
            serve.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL),
            f"barrier {barrier} did not SIGKILL the coordinator "
            f"(exit {serve.returncode}); too few leases before the study "
            f"finished?\nstderr:\n{serve.stderr.read()[-2000:]}",
        )
        # Same workdir, same ports: the durable queue resumes the study
        # and the dial-in agents re-register on their seeded backoff.
        serve2 = _spawn(
            [sys.executable, "-m", "repro.cli"] + serve_args
        )
        resubmit = _run(
            [sys.executable, "-m", "repro.cli"] + submit_args
            + ["--report-out", os.path.join(crash_dir, "rep.json")]
        )
        serve2.send_signal(signal.SIGTERM)
        serve2.wait(timeout=60)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    ref = _run(
        [sys.executable, "-m", "repro.cli", "study"] + QUEUE_STUDY.split()
        + ["--quiet", "--report-out", os.path.join(ref_dir, "rep.json")]
    )
    _assert(
        _read(os.path.join(crash_dir, "rep.json"))
        == _read(os.path.join(ref_dir, "rep.json")),
        f"service report after {barrier} crash/restart differs from the "
        "serial reference",
    )
    _assert(
        _tables(resubmit.stdout) == _tables(ref.stdout),
        f"published tables diverged after {barrier} crash/restart",
    )

    # The WAL must account every setup exactly once, ever — across both
    # coordinator incarnations.
    sys.path.insert(0, REPO_SRC)
    from repro.core.servicewal import ServiceWAL

    wal_path = os.path.join(state_dir, "queue.wal")
    state = ServiceWAL(wal_path).load()
    requested = 8  # QUEUE_STUDY: 4 env points x (base, treatment)
    record = next(iter(state.studies.values()))
    _assert(
        state.counts["submit"] == 1,
        f"resubmission was not deduplicated ({state.counts['submit']} "
        "submit records)",
    )
    _assert(
        record.completed == set(range(requested)),
        f"WAL completions wrong: {sorted(record.completed)}",
    )
    _assert(
        state.counts["complete"] == requested,
        f"setups double-counted: {state.counts['complete']} complete "
        f"records for {requested} setups",
    )
    _assert(
        state.counts["done"] == 1 and record.done,
        "study never reached its WAL done record",
    )
    _fsck([wal_path])


def run_sigstop(
    workdir: str, spec: str, stop_seconds: float, hang_timeout: float
) -> None:
    """SIGSTOP the whole sweep (coordinator + workers) mid-run for
    longer than the hang timeout, SIGCONT, and assert the report is
    clean and byte-identical to the serial reference.

    ``--max-respawns 0`` makes any heartbeat false-positive fatal to
    byte-identity: one spuriously "hung" worker would be killed, the
    pool would degrade to in-process execution, and the report would
    say so."""
    ref_dir = os.path.join(workdir, "sigstop-ref")
    stop_dir = os.path.join(workdir, "sigstop-run")
    ref = _run(_repro(spec, ref_dir))
    os.makedirs(stop_dir, exist_ok=True)
    argv = _repro(
        spec,
        stop_dir,
        extra=f"--jobs 2 --hang-timeout {hang_timeout} --max-respawns 0",
    )
    child = subprocess.Popen(
        argv,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
    )
    journal = os.path.join(stop_dir, "j.jsonl")
    deadline = time.monotonic() + 120
    try:
        # Wait until the sweep is demonstrably mid-flight (header plus
        # at least one measurement record in the journal).
        while time.monotonic() < deadline:
            if child.poll() is not None:
                raise AssertionError(
                    "sweep exited before the stop could be injected:\n"
                    + child.stderr.read()[-2000:]
                )
            try:
                with open(journal) as fh:
                    if sum(1 for line in fh if line.strip()) >= 2:
                        break
            except OSError:
                pass
            time.sleep(0.05)
        else:
            raise AssertionError("journal never gained a record")
        pgid = os.getpgid(child.pid)
        os.killpg(pgid, signal.SIGSTOP)
        time.sleep(stop_seconds)
        os.killpg(pgid, signal.SIGCONT)
        out, err = child.communicate(timeout=300)
    finally:
        if child.poll() is None:
            os.killpg(os.getpgid(child.pid), signal.SIGKILL)
    _assert(
        child.returncode == 0,
        f"stopped sweep exited {child.returncode}:\n{err[-2000:]}",
    )
    report = json.loads(_read(os.path.join(stop_dir, "rep.json")))
    _assert(
        not report["degraded"],
        "parent SIGSTOP degraded the sweep — heartbeat false-positive "
        f"(report: {report['degraded_setups']})",
    )
    rep_a = _read(os.path.join(ref_dir, "rep.json"))
    rep_b = _read(os.path.join(stop_dir, "rep.json"))
    _assert(rep_a == rep_b, "report after SIGSTOP/SIGCONT diverged")
    _assert(
        _tables(out) == _tables(ref.stdout),
        "published tables diverged after SIGSTOP/SIGCONT",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="crashsim", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    child = sub.add_parser("child", help="internal: crashing subprocess")
    child.add_argument("--barrier", required=True)
    child.add_argument("repro_args", nargs=argparse.REMAINDER)
    child.set_defaults(func=cmd_child)

    def _common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workdir",
            default=None,
            help="scratch directory (default: a fresh temp dir)",
        )
        p.add_argument(
            "--spec",
            default=DEFAULT_SPEC,
            help="repro argv template; @RUN@ becomes the run directory",
        )

    cycle = sub.add_parser("cycle", help="one kill/resume cycle")
    cycle.add_argument("--barrier", required=True, help="KIND:N")
    _common(cycle)

    sig = sub.add_parser("sigstop", help="coordinator SIGSTOP/SIGCONT run")
    _common(sig)
    sig.add_argument("--stop-seconds", type=float, default=3.0)
    sig.add_argument("--hang-timeout", type=float, default=1.0)

    everything = sub.add_parser("all", help="every barrier plus sigstop")
    _common(everything)
    everything.add_argument("--stop-seconds", type=float, default=3.0)
    everything.add_argument("--hang-timeout", type=float, default=1.0)

    args = parser.parse_args(argv)
    if args.command == "child":
        # argparse.REMAINDER keeps a leading "--"; drop it.
        if args.repro_args and args.repro_args[0] == "--":
            args.repro_args = args.repro_args[1:]
        return args.func(args)

    workdir = args.workdir or tempfile.mkdtemp(prefix="crashsim-")
    os.makedirs(workdir, exist_ok=True)
    if args.command == "cycle":
        checks = [(args.barrier, lambda: run_cycle(args.barrier, workdir, args.spec))]
    elif args.command == "sigstop":
        checks = [
            (
                "sigstop",
                lambda: run_sigstop(
                    workdir, args.spec, args.stop_seconds, args.hang_timeout
                ),
            )
        ]
    else:
        barriers = ["journal:3", "store-put:2", "archive:1", "queue:3"]
        checks = [
            (b, lambda b=b: run_cycle(b, workdir, args.spec))
            for b in barriers
        ]
        checks.append(
            (
                "sigstop",
                lambda: run_sigstop(
                    workdir, args.spec, args.stop_seconds, args.hang_timeout
                ),
            )
        )
    failures = 0
    for name, check in checks:
        started = time.monotonic()
        try:
            check()
        except AssertionError as exc:
            failures += 1
            print(f"FAIL {name}: {exc}", file=sys.stderr)
            continue
        print(f"PASS {name} ({time.monotonic() - started:.1f}s)")
    if failures:
        print(f"crashsim: {failures} check(s) failed", file=sys.stderr)
        return 1
    print("crashsim: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
