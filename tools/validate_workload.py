#!/usr/bin/env python
"""Developer tool: validate one workload module end-to-end.

Usage: python tools/validate_workload.py <module_path_or_name> [sizes...]

Compiles at O0..O3 with both vendor profiles, runs the "test" input (and
any extra sizes given) and compares against the Python reference.  Prints
per-config instruction/cycle counts so workload authors can judge scale.
"""

from __future__ import annotations

import importlib
import sys
import time

from repro.arch import execute, get_machine
from repro.os import Environment, load_process
from repro.toolchain import compile_program, link


#: Workload names whose module is named differently.
_ALIASES = {"gcc": "gcc_bench"}


def validate(module_name: str, sizes=("test",), seeds=(0, 1)) -> bool:
    module_name = _ALIASES.get(module_name, module_name)
    mod = importlib.import_module(f"repro.workloads.{module_name}")
    wl = mod.WORKLOAD
    ok = True
    for size in sizes:
        for seed in seeds:
            bindings = wl.input_for(size, seed)
            expected = wl.expected(bindings)
            for profile in ("gcc", "icc"):
                for level in (0, 1, 2, 3):
                    t0 = time.time()
                    mods = compile_program(
                        dict(wl.sources), opt_level=level, profile=profile
                    )
                    exe = link(mods)
                    img = load_process(
                        exe, Environment.typical(), inputs=bindings
                    )
                    res = execute(img, get_machine("core2").build())
                    dt = time.time() - t0
                    status = "ok" if res.exit_value == expected else "FAIL"
                    if status == "FAIL":
                        ok = False
                    if level in (0, 2) and profile == "gcc" or status == "FAIL":
                        print(
                            f"  {wl.name} {size} seed={seed} {profile} O{level}: "
                            f"{status} exit={res.exit_value} expected={expected} "
                            f"instrs={res.counters.instructions} "
                            f"cycles={res.counters.cycles:.0f} ({dt:.2f}s)"
                        )
    return ok


if __name__ == "__main__":
    name = sys.argv[1]
    sizes = tuple(sys.argv[2:]) or ("test",)
    sys.exit(0 if validate(name, sizes) else 1)
