#!/usr/bin/env python
"""CI tool: docstring-coverage ratchet for the ``repro`` package.

Usage: python tools/check_docstrings.py [--update] [--verbose]

Walks every module under ``src/repro``, counts public definitions
(modules, classes, functions, and methods whose names don't start with
``_``) and how many of them carry a docstring, and compares the overall
ratio against the floor pinned in this file.  The gate fails when
coverage drops below the floor — new code has to be documented at least
as well as the code it joins — and asks for a ratchet bump when coverage
rises well above it, so the floor follows the documentation level up but
never back down.

``--update`` prints the exact floor line to paste when ratcheting;
``--verbose`` lists every undocumented public definition, which is also
printed on failure so the fix is one ``--verbose``-guided edit away.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterator, List, Tuple

#: The ratchet: the measured coverage must never drop below this.  Raise
#: it (see --update) whenever real coverage climbs more than a point
#: above; never lower it.
FLOOR = 0.82

#: Hysteresis before the gate asks for a ratchet bump, so routine
#: commits don't churn the floor.
SLACK = 0.02

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


def iter_modules(root: str) -> Iterator[str]:
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def public_definitions(path: str) -> Iterator[Tuple[str, bool]]:
    """Yield ``(qualified_name, has_docstring)`` for the module and each
    public class/function/method defined in it."""
    with open(path) as fh:
        tree = ast.parse(fh.read(), filename=path)
    rel = os.path.relpath(path, os.path.dirname(SRC_ROOT))
    modname = rel[:-3].replace(os.sep, ".")
    yield modname, ast.get_docstring(tree) is not None

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, bool]]:
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child,
                (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                continue
            if child.name.startswith("_"):
                continue
            name = f"{prefix}.{child.name}"
            yield name, ast.get_docstring(child) is not None
            if isinstance(child, ast.ClassDef):
                yield from walk(child, name)

    yield from walk(tree, modname)


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="print the floor line for a ratchet bump",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="list every undocumented public definition",
    )
    args = parser.parse_args(argv)

    total = documented = 0
    missing: List[str] = []
    for path in iter_modules(os.path.normpath(SRC_ROOT)):
        for name, has_doc in public_definitions(path):
            total += 1
            documented += has_doc
            if not has_doc:
                missing.append(name)

    ratio = documented / total if total else 1.0
    print(
        f"docstring coverage: {documented}/{total} public definitions "
        f"({ratio:.1%}); floor {FLOOR:.1%}"
    )
    if args.verbose or ratio < FLOOR:
        for name in missing:
            print(f"  undocumented: {name}")
    if args.update:
        suggested = int(ratio * 100) / 100
        print(f"ratchet line: FLOOR = {suggested:.2f}")
        return 0
    if ratio < FLOOR:
        print(
            f"FAIL: coverage fell below the ratchet floor "
            f"({ratio:.1%} < {FLOOR:.1%}); document the additions "
            f"(or justify lowering the floor in review)."
        )
        return 1
    if ratio > FLOOR + SLACK:
        print(
            f"FAIL: coverage ({ratio:.1%}) has outgrown the floor; "
            f"ratchet it up (run with --update for the exact line)."
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
