#!/usr/bin/env python
"""CI tool: documentation link and reachability lint.

Usage: python tools/check_docs_links.py [--verbose]

Two checks over every Markdown file in the repository root and
``docs/``:

1. **Link integrity** — every relative Markdown link (``[x](path)`` and
   bare ``docs/foo.md`` / ``tools/foo.py`` style path mentions) must
   point at a file that exists.  Stale pointers are how handbooks rot:
   a renamed bench or a moved doc silently orphans every cross
   reference to it.

2. **Reachability** — every file under ``docs/`` must be linked from at
   least one *other* checked document (README.md counts).  A handbook
   nobody links to is a handbook nobody finds; new docs must be wired
   into the navigation the moment they land.

Exit status is non-zero on any broken link or unreachable doc, with a
per-finding report.  ``--verbose`` also prints the link graph.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, Set

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir)
)

#: Inline Markdown links: [text](target).  External schemes are skipped.
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s#]+)(?:#[^)\s]*)?\)")

#: Bare repo-relative path mentions in prose or code spans, e.g.
#: ``docs/engine.md`` or ``tools/bench_compare.py``.  Only directories
#: whose contents this lint can vouch for are matched.
_BARE_PATH = re.compile(
    r"\b((?:docs|tools|benchmarks|tests|src)/[A-Za-z0-9_\-./]+"
    r"\.(?:md|py|json|yml))\b"
)

_SCHEMES = ("http://", "https://", "mailto:")

#: Scaffolding written by the growth driver, not by this repo: these
#: files quote external material (task briefs, paper abstracts, code
#: excerpts with retrieval pseudo-links) whose references this lint
#: cannot vouch for.  The repo's own documentation contract starts at
#: README.md and docs/.
EXCLUDED = frozenset({"ISSUE.md", "PAPER.md", "PAPERS.md", "SNIPPETS.md"})


def checked_files() -> List[str]:
    """Repo-relative paths of every Markdown document this lint owns."""
    out = [
        name
        for name in sorted(os.listdir(REPO_ROOT))
        if name.endswith(".md")
        and name not in EXCLUDED
        and os.path.isfile(os.path.join(REPO_ROOT, name))
    ]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        out += [
            f"docs/{name}"
            for name in sorted(os.listdir(docs_dir))
            if name.endswith(".md")
        ]
    return out


def extract_targets(relpath: str, text: str) -> Set[str]:
    """All repo-relative link targets mentioned by one document."""
    base = os.path.dirname(relpath)
    targets: Set[str] = set()
    for match in _MD_LINK.finditer(text):
        raw = match.group(1)
        if raw.startswith(_SCHEMES) or raw.startswith("#"):
            continue
        targets.add(os.path.normpath(os.path.join(base, raw)))
    for match in _BARE_PATH.finditer(text):
        # Bare mentions are written repo-relative by convention.
        targets.add(os.path.normpath(match.group(1)))
    return targets


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--verbose", action="store_true", help="print the link graph"
    )
    args = parser.parse_args()

    files = checked_files()
    graph: Dict[str, Set[str]] = {}
    problems: List[str] = []
    for relpath in files:
        with open(os.path.join(REPO_ROOT, relpath), encoding="utf-8") as fh:
            text = fh.read()
        graph[relpath] = extract_targets(relpath, text)
        for target in sorted(graph[relpath]):
            if not os.path.exists(os.path.join(REPO_ROOT, target)):
                problems.append(f"{relpath}: broken link -> {target}")

    linked: Set[str] = set()
    for relpath, targets in graph.items():
        linked |= {t for t in targets if t != relpath}
    for relpath in files:
        if relpath.startswith("docs/") and relpath not in linked:
            problems.append(
                f"{relpath}: unreachable — no other document links to it"
            )

    if args.verbose:
        for relpath in files:
            print(f"{relpath}:")
            for target in sorted(graph[relpath]):
                print(f"  -> {target}")

    if problems:
        for line in problems:
            print(f"docs-lint: {line}", file=sys.stderr)
        print(f"docs-lint: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs-lint: {len(files)} documents, all links resolve, "
          "all docs reachable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
