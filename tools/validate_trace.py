#!/usr/bin/env python
"""CI tool: schema-check observability artifacts (traces, manifests,
bench sidecars).

Usage: python tools/validate_trace.py <artifact.json> [more.json ...]

Each file is classified by its format marker and checked against the
matching schema (:mod:`repro.obs.inspect` for Chrome traces,
:mod:`repro.obs.manifest` for provenance manifests, a local check for
``benchmarks/results/*.meta.json`` sidecars).  Exits non-zero — listing
every problem — if any artifact is invalid, so the CI job that uploads
a sweep trace also proves it is loadable.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List

from repro._errors import ArchiveCorruption
from repro.obs.inspect import (
    is_manifest,
    is_trace,
    load_json_artifact,
    validate_manifest,
    validate_trace,
)


def validate_bench_meta(data: Dict[str, Any]) -> List[str]:
    """Schema check for a ``BENCH_*.meta.json`` provenance sidecar."""
    errors: List[str] = []
    for key in ("experiment_id", "artifact", "package", "environment"):
        if key not in data:
            errors.append(f"missing required key {key!r}")
    artifact = data.get("artifact")
    if isinstance(artifact, dict):
        checksum = artifact.get("sha256")
        if not (isinstance(checksum, str) and len(checksum) == 64):
            errors.append("artifact.sha256 is not SHA-256 hex")
        if "file" not in artifact:
            errors.append("artifact names no file")
    elif "artifact" in data:
        errors.append("artifact is not an object")
    return errors


def classify_and_validate(data: Dict[str, Any]) -> tuple:
    if is_trace(data):
        return "trace", validate_trace(data)
    if is_manifest(data):
        return "manifest", validate_manifest(data)
    if data.get("format") == "repro-bench-meta-v1":
        return "bench-meta", validate_bench_meta(data)
    return "artifact", ["unrecognized artifact (no known format marker)"]


def main(paths: List[str]) -> int:
    if not paths:
        print(__doc__.strip().splitlines()[3])
        return 2
    failures = 0
    for path in paths:
        try:
            data = load_json_artifact(path)
        except (ArchiveCorruption, OSError) as exc:
            print(f"INVALID {path}: {exc}")
            failures += 1
            continue
        kind, errors = classify_and_validate(data)
        if errors:
            failures += 1
            print(f"INVALID {kind} {path}:")
            for problem in errors:
                print(f"  - {problem}")
        else:
            print(f"OK: valid {kind}: {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
