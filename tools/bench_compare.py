#!/usr/bin/env python
"""Bench regression gate: diff two benchmark sidecar directories.

Each directory holds ``<id>.txt`` artifacts and ``<id>.meta.json``
provenance sidecars written by :func:`benchmarks.common.publish`
(redirect the tree with ``REPRO_BENCH_RESULTS``).  The comparison
enforces the repo's determinism contract (docs/observability.md):

- **deterministic facts must match exactly** — the published artifact's
  bytes (via its sha256), event counters (``engine.instructions``,
  ``engine.simulated_cycles``, cache hits, ...), engine-profile dispatch
  and basic-block counts, and the recorded harness configuration
  (jobs/hosts/fault plan/trace sampling/heartbeat interval);
- **wall-clock facts get a tolerance** — ``engine.ips``, ``*_seconds``
  histograms and ``*_wall_ns`` tallies are facts about one host on one
  day, so they are compared with a relative threshold
  (``--wall-tolerance``, default 0.5 = +/-50%) instead of exactly;
- **timestamps are ignored** (``created_unix``).

Exit codes: 0 = no drift, 1 = drift detected, 2 = usage/IO error.

Usage::

    python tools/bench_compare.py RESULTS_A RESULTS_B [--wall-tolerance F]

The perf-smoke CI job runs the pinned micro-bench twice into two fresh
directories and gates the build on this script: any nonzero exit means
the lab produced different numbers from the same inputs — exactly the
class of silent drift the source paper is about.
"""

from __future__ import annotations

import argparse
import copy
import glob
import hashlib
import json
import os
import sys
from typing import Any, Dict, Iterator, List, Tuple

#: Metric-name suffixes that mark a value as wall-clock (host-local,
#: never byte-stable): timings, rates derived from timings.
WALL_SUFFIXES = ("_seconds", "_wall_ns", ".ips", "_wall")

#: Top-level sidecar keys that are pure timestamps — not compared at all.
IGNORED_KEYS = ("created_unix",)


def is_wall_metric(name: str) -> bool:
    """True when a metric name denotes a wall-clock quantity."""
    return name.endswith(WALL_SUFFIXES)


def load_sidecars(directory: str) -> Dict[str, Dict[str, Any]]:
    """All ``*.meta.json`` sidecars in ``directory``, keyed by bench id."""
    if not os.path.isdir(directory):
        raise OSError(f"not a directory: {directory}")
    out: Dict[str, Dict[str, Any]] = {}
    for path in sorted(glob.glob(os.path.join(directory, "*.meta.json"))):
        name = os.path.basename(path)[: -len(".meta.json")]
        with open(path) as fh:
            out[name] = json.load(fh)
    return out


def verify_artifact(directory: str, sidecar: Dict[str, Any]) -> List[str]:
    """Check the sidecar's artifact checksum against the file on disk."""
    artifact = sidecar.get("artifact") or {}
    fname, want = artifact.get("file"), artifact.get("sha256")
    if not fname or not want:
        return [f"sidecar lacks an artifact checksum ({directory})"]
    path = os.path.join(directory, fname)
    if not os.path.exists(path):
        return [f"artifact missing on disk: {path}"]
    with open(path, "rb") as fh:
        got = hashlib.sha256(fh.read()).hexdigest()
    if got != want:
        return [f"artifact corrupt on disk: {path} sha256 {got[:12]}... != recorded {want[:12]}..."]
    return []


def deterministic_view(sidecar: Dict[str, Any]) -> Dict[str, Any]:
    """Project a sidecar down to its byte-stable fields.

    Drops timestamps, wall-clock gauges and wall-clock histogram
    statistics (the observation *count* of a wall histogram is an event
    count, so it stays), and the engine profile's per-class nanosecond
    tallies.  Whatever survives must compare equal between two runs of
    the same bench.
    """
    out = copy.deepcopy(sidecar)
    for key in IGNORED_KEYS:
        out.pop(key, None)
    metrics = out.get("metrics") or {}
    for name in list(metrics.get("gauges") or {}):
        if is_wall_metric(name):
            metrics["gauges"].pop(name)
    for name, summary in list((metrics.get("histograms") or {}).items()):
        if is_wall_metric(name) and isinstance(summary, dict):
            metrics["histograms"][name] = {"count": summary.get("count")}
    perf = out.get("perf")
    if isinstance(perf, dict) and isinstance(perf.get("engine"), dict):
        perf["engine"].pop("opcode_wall_ns", None)
        # Which engine path ran (and how warm its decode cache was) is a
        # host/session fact, not a measurement: the block-cache tallies
        # are all zeros under REPRO_ENGINE_FASTPATH=0 and nonzero
        # otherwise, while every simulated result stays byte-identical.
        perf["engine"].pop("block_cache", None)
    return out


def diff_paths(a: Any, b: Any, prefix: str = "") -> Iterator[str]:
    """Human-readable dotted paths where two JSON values differ."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{prefix}.{key}" if prefix else str(key)
            if key not in a:
                yield f"{sub}: only in B ({b[key]!r})"
            elif key not in b:
                yield f"{sub}: only in A ({a[key]!r})"
            else:
                yield from diff_paths(a[key], b[key], sub)
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            yield f"{prefix}: list length {len(a)} != {len(b)}"
        else:
            for i, (va, vb) in enumerate(zip(a, b)):
                yield from diff_paths(va, vb, f"{prefix}[{i}]")
    elif a != b:
        yield f"{prefix}: {a!r} != {b!r}"


def wall_values(sidecar: Dict[str, Any]) -> Dict[str, float]:
    """The comparable wall-clock scalars of one sidecar, by dotted path."""
    out: Dict[str, float] = {}
    metrics = sidecar.get("metrics") or {}
    for name, value in (metrics.get("gauges") or {}).items():
        if is_wall_metric(name) and isinstance(value, (int, float)):
            out[f"gauges.{name}"] = float(value)
    for name, summary in (metrics.get("histograms") or {}).items():
        if is_wall_metric(name) and isinstance(summary, dict):
            mean = summary.get("mean")
            if isinstance(mean, (int, float)):
                out[f"histograms.{name}.mean"] = float(mean)
    perf = sidecar.get("perf")
    if isinstance(perf, dict) and isinstance(perf.get("engine"), dict):
        wall_ns = perf["engine"].get("opcode_wall_ns")
        if isinstance(wall_ns, dict):
            out["perf.engine.opcode_wall_ns.total"] = float(
                sum(v for v in wall_ns.values() if isinstance(v, (int, float)))
            )
    return out


def compare_wall(
    a: Dict[str, Any], b: Dict[str, Any], tolerance: float
) -> Tuple[List[str], List[str]]:
    """Thresholded wall-clock comparison: (problems, info lines)."""
    problems: List[str] = []
    info: List[str] = []
    va, vb = wall_values(a), wall_values(b)
    for path in sorted(set(va) & set(vb)):
        x, y = va[path], vb[path]
        scale = max(abs(x), abs(y))
        rel = abs(x - y) / scale if scale > 0 else 0.0
        line = f"{path}: {x:g} vs {y:g} ({rel:+.1%})"
        if rel > tolerance:
            problems.append(f"wall drift beyond {tolerance:.0%}: {line}")
        else:
            info.append(line)
    return problems, info


def compare_dirs(
    dir_a: str, dir_b: str, tolerance: float, verbose: bool = False
) -> List[str]:
    """All drift findings between two result directories."""
    side_a, side_b = load_sidecars(dir_a), load_sidecars(dir_b)
    problems: List[str] = []
    if not side_a and not side_b:
        problems.append("no sidecars found in either directory")
    for name in sorted(set(side_a) - set(side_b)):
        problems.append(f"{name}: only in {dir_a}")
    for name in sorted(set(side_b) - set(side_a)):
        problems.append(f"{name}: only in {dir_b}")
    for name in sorted(set(side_a) & set(side_b)):
        a, b = side_a[name], side_b[name]
        problems += [f"{name}: {p}" for p in verify_artifact(dir_a, a)]
        problems += [f"{name}: {p}" for p in verify_artifact(dir_b, b)]
        problems += [
            f"{name}: deterministic field differs — {d}"
            for d in diff_paths(deterministic_view(a), deterministic_view(b))
        ]
        if tolerance > 0:
            wall_problems, wall_info = compare_wall(a, b, tolerance)
            problems += [f"{name}: {p}" for p in wall_problems]
            if verbose:
                for line in wall_info:
                    print(f"  {name}: wall ok: {line}")
    return problems


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description="Diff two benchmark sidecar directories "
        "(exact on deterministic facts, thresholded on wall clock).",
    )
    parser.add_argument("dir_a", help="baseline results directory")
    parser.add_argument("dir_b", help="candidate results directory")
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.5,
        metavar="FRAC",
        help="max relative wall-clock drift (default 0.5; 0 disables "
        "wall checks entirely)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print wall-clock comparisons that passed",
    )
    args = parser.parse_args(argv)
    if args.wall_tolerance < 0:
        parser.error("--wall-tolerance must be >= 0")
    try:
        problems = compare_dirs(
            args.dir_a, args.dir_b, args.wall_tolerance, args.verbose
        )
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: {exc}", file=sys.stderr)
        return 2
    if problems:
        print(f"DRIFT: {len(problems)} problem(s) comparing "
              f"{args.dir_a} vs {args.dir_b}")
        for p in problems:
            print(f"  - {p}")
        return 1
    shared = len(set(load_sidecars(args.dir_a)) & set(load_sidecars(args.dir_b)))
    print(f"OK: {shared} bench result(s) match "
          f"(wall tolerance {args.wall_tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
