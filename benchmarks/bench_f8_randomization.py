"""F8 — Figure: experimental setup randomization (the paper's remedy).

Two panels:

- F8a: three *single-setup* experiments, each internally valid, reaching
  different conclusions about O3 — "producing wrong data".
- F8b: the randomized protocol — mean speedup with a 95% Student-t
  interval as setups accumulate; the interval either settles on a
  conclusion or honestly reports "inconclusive".
- F8c: the full inference work-up of the final sample (see
  docs/statistics.md) — BCa bootstrap interval, paired Wilcoxon
  signed-rank test with its rank-biserial effect size, robust
  aggregates, and the sequential required-sample-size recommendation.
  The nonparametric verdict must agree in direction with the t-based
  panel above it.
"""

from repro.core.randomization import (
    interval_vs_setup_count,
    paired_random_setups,
)
from repro.core.report import render_interval_row, render_table

from common import BASE, TREATMENT, experiment, parallel_sweep, publish

#: Three "innocuous" single setups an experimenter might use.
SINGLE_SETUPS = (
    ("lab machine A", dict(env_bytes=100)),
    ("lab machine B", dict(env_bytes=132)),
    ("fresh checkout", dict(env_bytes=1040)),
)


def test_f8_setup_randomization(benchmark):
    exp = experiment("perlbench")

    rows = []
    verdicts = set()
    for label, changes in SINGLE_SETUPS:
        s = exp.speedup(
            BASE.with_changes(**changes), TREATMENT.with_changes(**changes)
        )
        verdict = "O3 helps" if s > 1 else "O3 hurts"
        verdicts.add(verdict)
        rows.append([label, f"{s:.4f}", verdict])
    single_table = render_table(
        ["single setup", "measured speedup", "conclusion"],
        rows,
        title="F8a: single-setup experiments (each one 'perfectly valid')",
    )

    counts = (4, 8, 16)
    parallel_sweep(
        exp,
        [
            s
            for pair in paired_random_setups(
                exp, BASE, TREATMENT, max(counts), seed=5
            )
            for s in pair
        ],
    )
    series = interval_vs_setup_count(
        exp, BASE, TREATMENT, counts=counts, seed=5
    )
    all_vals = [v for __, ev in series for v in ev.speedups]
    scale = (min(all_vals + [0.99]), max(all_vals + [1.01]))
    lines = ["F8b: randomized-setup estimate vs number of setups"]
    for n, ev in series:
        lines.append(
            render_interval_row(
                f"n={n:>2}",
                ev.interval.lo,
                ev.mean,
                ev.interval.hi,
                scale=scale,
                reference=1.0,
                method=ev.interval.method,
            )
            + f"  -> {ev.verdict}"
        )

    final = series[-1][1]
    analysis = final.analysis(seed=5)
    f8c = ["F8c: inference work-up of the final sample"]
    f8c += ["  " + line for line in analysis.summary_lines()]
    publish(
        "F8_randomization",
        single_table + "\n\n" + "\n".join(lines) + "\n\n" + "\n".join(f8c),
    )

    # The paper's motivating contradiction: single setups disagree.
    assert len(verdicts) == 2, (
        "single-setup experiments were expected to reach opposite "
        f"conclusions; all said {verdicts}"
    )
    # The randomized protocol yields a defensible summary: an interval
    # (conclusive or not) rather than a point lie.
    assert final.interval.lo < final.mean < final.interval.hi
    # The distribution-free verdict must not contradict the t-based one:
    # when both are conclusive they point the same way.
    if final.conclusive and analysis.significant:
        t_direction = (
            "speedup" if final.verdict == "beneficial" else "slowdown"
        )
        assert analysis.direction == t_direction, (
            f"nonparametric verdict {analysis.direction} contradicts "
            f"t verdict {final.verdict}"
        )

    benchmark.pedantic(
        lambda: interval_vs_setup_count(
            exp, BASE, TREATMENT, counts=(2,), seed=5
        ),
        rounds=1,
        iterations=1,
    )
