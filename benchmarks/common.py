"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index), prints it, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artifacts.

Experiments are cached per (workload, size, seed) for the whole pytest
session, so benches that share sweeps don't recompute them.

Every published result gets a provenance sidecar
(``results/<id>.meta.json``): the artifact's checksum, the package and
host identity, and a metrics snapshot — so a committed table can answer
"how exactly was this produced?" without re-running the bench (see
docs/observability.md).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict
from functools import lru_cache
from typing import Any, Dict, Optional, Sequence

from repro import __version__, faults, workloads
from repro.core import Experiment, ExperimentalSetup, RunnerConfig, SweepRunner
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs.manifest import environment_fingerprint, text_checksum

#: Format marker for the per-result provenance sidecars.
BENCH_META_FORMAT = "repro-bench-meta-v1"

#: Where artifacts + sidecars land.  REPRO_BENCH_RESULTS redirects the
#: whole results tree — the perf-smoke CI job runs the same bench twice
#: into two directories and diffs the sidecars (tools/bench_compare.py).
RESULTS_DIR = (
    os.environ.get("REPRO_BENCH_RESULTS", "").strip()
    or os.path.join(os.path.dirname(__file__), "results")
)

#: Worker processes for suite-scale sweeps (F2/F4/F8).  Overridable via
#: REPRO_BENCH_JOBS; set to 1 to force the serial path.
BENCH_JOBS = int(
    os.environ.get("REPRO_BENCH_JOBS", str(min(4, os.cpu_count() or 1)))
)

#: Remote sweep agents ("host1:port,host2:port") for the benchmark
#: harness, from REPRO_BENCH_HOSTS (same syntax as the CLI's --hosts).
#: When set, suite-scale sweeps dispatch to those agents over TCP
#: instead of local worker processes (see docs/distributed.md); the
#: substrate's determinism keeps the published tables byte-identical
#: either way, and the roster is recorded in every result's sidecar.
BENCH_HOSTS = os.environ.get("REPRO_BENCH_HOSTS", "").strip() or None


def _bench_fault_plan() -> Optional[faults.FaultPlan]:
    spec = os.environ.get("REPRO_BENCH_FAULT_PLAN", "").strip()
    return faults.parse_plan(spec) if spec else None


#: Deterministic chaos for the benchmark harness, from
#: REPRO_BENCH_FAULT_PLAN (same spec syntax as the CLI's --fault-plan).
#: The substrate's determinism means published tables are byte-identical
#: with or without an injected-and-recovered fault plan; the plan is
#: recorded in every result's provenance sidecar either way.
BENCH_FAULT_PLAN = _bench_fault_plan()


def _bench_store():
    """The shared measurement store, from REPRO_BENCH_STORE.

    When the variable names a directory, every suite-scale sweep routes
    through one on-disk :class:`repro.store.MeasurementStore`: a cold
    run fills it, and a warm re-run of the same bench skips the
    simulator entirely while publishing byte-identical tables (the
    store's contract; see docs/store.md).  Unset = no store, as before.
    """
    path = os.environ.get("REPRO_BENCH_STORE", "").strip()
    if not path:
        return None
    from repro.store import open_store

    return open_store(path)


#: Shared content-addressed measurement store for the benchmark harness
#: (None unless REPRO_BENCH_STORE names a directory).
BENCH_STORE = _bench_store()

#: Deterministic 1-in-N trace sampling for suite-scale sweeps, from
#: REPRO_BENCH_TRACE_SAMPLE (default 1 = keep every span).  Recorded in
#: every sidecar; never affects published tables.
BENCH_TRACE_SAMPLE = int(os.environ.get("REPRO_BENCH_TRACE_SAMPLE", "1"))

#: Worker heartbeat interval for supervised bench sweeps (also recorded
#: in sidecars so a regression in sweep wall time can be attributed).
BENCH_HEARTBEAT_INTERVAL = float(
    os.environ.get("REPRO_BENCH_HEARTBEAT_INTERVAL", "0.2")
)

#: Canonical base/treatment pair: the paper's "is O3 beneficial?" question.
BASE = ExperimentalSetup(machine="core2", compiler="gcc", opt_level=2)
TREATMENT = BASE.with_changes(opt_level=3)

#: Environment sweep used by figure benches: two alignment periods at two
#: distant offsets, plus a coarse scan to 4 KiB (the paper's x-range).
ENV_SWEEP_FINE = list(range(100, 164, 4)) + list(range(1000, 1064, 4))
ENV_SWEEP_COARSE = list(range(100, 4196, 128))


@lru_cache(maxsize=None)
def experiment(name: str, size: str = "test", seed: int = 0) -> Experiment:
    """Session-cached experiment handle."""
    return Experiment(workloads.get(name), size=size, seed=seed)


def parallel_sweep(
    exp: Experiment,
    setups: Sequence[ExperimentalSetup],
    fault_plan: Optional[faults.FaultPlan] = None,
) -> None:
    """Warm ``exp``'s caches for ``setups`` via the fault-tolerant
    runner, so the serial study code that follows is all cache hits.

    The substrate is deterministic, so the published tables are
    byte-identical with and without the parallel warm-up; suite-scale
    sweeps just finish in a fraction of the wall-clock time.

    ``fault_plan`` (default: :data:`BENCH_FAULT_PLAN` from the
    environment) injects deterministic chaos into the warm-up sweep;
    when a plan is set the sweep always routes through the supervised
    runner, even at ``BENCH_JOBS=1``, so recovery is exercised — and a
    sweep the runner could not fully measure fails the bench loudly.
    """
    plan = fault_plan if fault_plan is not None else BENCH_FAULT_PLAN
    if plan is None and BENCH_HOSTS is None and BENCH_STORE is None and (
        BENCH_JOBS <= 1 or len(setups) < 4
    ):
        for s in setups:
            exp.run(s)
        return
    result = SweepRunner(
        exp,
        RunnerConfig(
            jobs=BENCH_JOBS,
            hosts=BENCH_HOSTS,
            trace_sample=BENCH_TRACE_SAMPLE,
            heartbeat_interval=BENCH_HEARTBEAT_INTERVAL,
        ),
        fault_plan=plan,
        store=BENCH_STORE,
    ).run(setups)
    if result.report.quarantined:
        raise RuntimeError(
            "benchmark sweep quarantined setups:\n"
            + result.report.summary_line()
        )


def publish(
    experiment_id: str, text: str, meta: Optional[Dict[str, Any]] = None
) -> None:
    """Print a rendered table/figure, archive it, and write its
    provenance sidecar (``<id>.meta.json``).

    ``meta`` lets a bench attach experiment-specific provenance (e.g.
    the sweep ranges it used) on top of the standard fields.
    """
    banner = f"===== {experiment_id} ====="
    print()
    print(banner)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    artifact = text + "\n"
    with open(os.path.join(RESULTS_DIR, f"{experiment_id}.txt"), "w") as fh:
        fh.write(artifact)
    sidecar = {
        "format": BENCH_META_FORMAT,
        "created_unix": time.time(),
        "experiment_id": experiment_id,
        "artifact": {
            "file": f"{experiment_id}.txt",
            "sha256": text_checksum(artifact),
        },
        "package": {"name": "repro", "version": __version__},
        "environment": environment_fingerprint(),
        "bench_jobs": BENCH_JOBS,
        "bench_hosts": BENCH_HOSTS,
        "fault_plan": (
            asdict(BENCH_FAULT_PLAN) if BENCH_FAULT_PLAN is not None else None
        ),
        "store": (
            BENCH_STORE.provenance() if BENCH_STORE is not None else None
        ),
        "trace_sample": BENCH_TRACE_SAMPLE,
        "heartbeat_interval": BENCH_HEARTBEAT_INTERVAL,
        "metrics": obs_metrics.registry().snapshot(),
        "perf": obs_perf.snapshot(),
        "meta": dict(meta) if meta else {},
    }
    with open(
        os.path.join(RESULTS_DIR, f"{experiment_id}.meta.json"), "w"
    ) as fh:
        json.dump(sidecar, fh, indent=1, sort_keys=True)


def fmt_speedups(values: Sequence[float]) -> str:
    return " ".join(f"{v:.4f}" for v in values)
