"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index), prints it, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artifacts.

Experiments are cached per (workload, size, seed) for the whole pytest
session, so benches that share sweeps don't recompute them.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Sequence

from repro import workloads
from repro.core import Experiment, ExperimentalSetup, RunnerConfig, SweepRunner

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Worker processes for suite-scale sweeps (F2/F4/F8).  Overridable via
#: REPRO_BENCH_JOBS; set to 1 to force the serial path.
BENCH_JOBS = int(
    os.environ.get("REPRO_BENCH_JOBS", str(min(4, os.cpu_count() or 1)))
)

#: Canonical base/treatment pair: the paper's "is O3 beneficial?" question.
BASE = ExperimentalSetup(machine="core2", compiler="gcc", opt_level=2)
TREATMENT = BASE.with_changes(opt_level=3)

#: Environment sweep used by figure benches: two alignment periods at two
#: distant offsets, plus a coarse scan to 4 KiB (the paper's x-range).
ENV_SWEEP_FINE = list(range(100, 164, 4)) + list(range(1000, 1064, 4))
ENV_SWEEP_COARSE = list(range(100, 4196, 128))


@lru_cache(maxsize=None)
def experiment(name: str, size: str = "test", seed: int = 0) -> Experiment:
    """Session-cached experiment handle."""
    return Experiment(workloads.get(name), size=size, seed=seed)


def parallel_sweep(
    exp: Experiment, setups: Sequence[ExperimentalSetup]
) -> None:
    """Warm ``exp``'s caches for ``setups`` via the fault-tolerant
    runner, so the serial study code that follows is all cache hits.

    The substrate is deterministic, so the published tables are
    byte-identical with and without the parallel warm-up; suite-scale
    sweeps just finish in a fraction of the wall-clock time.
    """
    if BENCH_JOBS <= 1 or len(setups) < 4:
        for s in setups:
            exp.run(s)
        return
    result = SweepRunner(exp, RunnerConfig(jobs=BENCH_JOBS)).run(setups)
    if result.report.quarantined:
        raise RuntimeError(
            "benchmark sweep quarantined setups:\n"
            + result.report.summary_line()
        )


def publish(experiment_id: str, text: str) -> None:
    """Print a rendered table/figure and archive it."""
    banner = f"===== {experiment_id} ====="
    print()
    print(banner)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{experiment_id}.txt"), "w") as fh:
        fh.write(text + "\n")


def fmt_speedups(values: Sequence[float]) -> str:
    return " ".join(f"{v:.4f}" for v in values)
