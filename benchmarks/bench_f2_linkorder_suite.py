"""F2 — Figure: link-order bias across the whole suite (paper Figure:
per-benchmark range of O3-over-O2 speedups across link orders).

For every workload, the O3/O2 speedup is measured under several link
orders; the row reports the speedup's min/max and whether the conclusion
flips.  The paper's shape: most benchmarks move, a few flip.
"""

from repro import workloads
from repro.core.bias import link_order_study, sample_link_orders
from repro.core.report import render_table

from common import BASE, TREATMENT, experiment, parallel_sweep, publish

#: Orders per workload: enough to expose spread while keeping the
#: full-suite bench affordable.
N_ORDERS = 4


def test_f2_linkorder_suite(benchmark):
    rows = []
    any_flip = False
    spreads = []
    for wl in workloads.suite():
        exp = experiment(wl.name)
        orders = sample_link_orders(wl.module_names(), N_ORDERS, seed=17)
        parallel_sweep(
            exp,
            [
                s.with_changes(link_order=tuple(order))
                for order in orders
                for s in (BASE, TREATMENT)
            ],
        )
        study = link_order_study(exp, BASE, TREATMENT, orders=orders)
        rep = study.speedup_bias()
        spreads.append(rep.magnitude)
        any_flip |= rep.flips
        rows.append(
            [
                wl.name,
                f"{rep.stats.minimum:.4f}",
                f"{rep.stats.maximum:.4f}",
                f"{rep.magnitude:.4f}",
                "YES" if rep.flips else "",
            ]
        )
    publish(
        "F2_linkorder_suite",
        render_table(
            ["benchmark", "min speedup", "max speedup", "bias", "flips?"],
            rows,
            title=(
                f"F2: O3/O2 speedup range across {N_ORDERS} link orders "
                "(core2, gcc)"
            ),
        ),
    )
    # Shape: link order must move measured speedups somewhere in the suite.
    assert max(spreads) > 1.002

    exp = experiment("sphinx3")
    benchmark.pedantic(
        lambda: link_order_study(exp, BASE, TREATMENT, max_orders=2),
        rounds=1,
        iterations=1,
    )
