"""T1 — Table: the experimental platforms (paper Table "machines").

Prints the three machine models' key properties, and benchmarks raw
simulator throughput on each (instructions per wall-second) — the cost of
a measurement on this substrate.
"""

import pytest

from repro.arch import available_machines, execute, get_machine
from repro.core.report import render_table
from repro.os import load_process

from common import BASE, experiment, publish


def test_t1_platform_table(benchmark):
    def build_table():
        rows = []
        headers = None
        for name in ("core2", "pentium4", "m5_o3cpu"):
            summary = get_machine(name).summary()
            if headers is None:
                headers = list(summary.keys())
            rows.append([summary[h] for h in headers])
        return headers, rows

    headers, rows = benchmark.pedantic(build_table, rounds=5, iterations=1)
    publish(
        "T1_platforms",
        render_table(headers, rows, title="T1: simulated platforms"),
    )
    assert len(rows) == len(available_machines())


@pytest.mark.parametrize("machine", ["core2", "pentium4", "m5_o3cpu"])
def test_t1_simulator_throughput(benchmark, machine):
    exp = experiment("sphinx3")
    exe = exp.build(BASE)
    img = load_process(exe, BASE.environment(), inputs=exp._bindings)
    cfg = get_machine(machine)

    result = benchmark.pedantic(
        lambda: execute(img, cfg.build()), rounds=3, iterations=1
    )
    assert result.exit_value == exp.expected
