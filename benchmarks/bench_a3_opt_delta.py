"""A3 — Ablation: why O2-vs-O3 conclusions are fragile.

Per workload: O3's *instruction-count* advantage vs its *realized* cycle
advantage at one setup.  DESIGN.md's point: the smaller the intrinsic
gap (and the larger the layout-sensitive cost components), the easier a
setup change flips the conclusion — the suite should show realized
speedups scattering around the instruction-count trend.
"""

from repro import workloads
from repro.analysis import attribute_delta
from repro.core.report import render_table

from common import BASE, TREATMENT, experiment, publish


def test_a3_opt_delta(benchmark):
    rows = []
    gaps = []
    for wl in workloads.suite():
        exp = experiment(wl.name)
        m2 = exp.run(BASE)
        m3 = exp.run(TREATMENT)
        inst_ratio = m2.counters.instructions / m3.counters.instructions
        cyc_ratio = m2.cycles / m3.cycles
        att = attribute_delta(m2, m3, BASE.machine_config())
        gaps.append((wl.name, inst_ratio, cyc_ratio))
        rows.append(
            [
                wl.name,
                f"{inst_ratio:.4f}",
                f"{cyc_ratio:.4f}",
                f"{cyc_ratio - inst_ratio:+.4f}",
                att.dominant_cause(),
            ]
        )
    publish(
        "A3_opt_delta",
        render_table(
            [
                "benchmark",
                "O2/O3 instructions",
                "O2/O3 cycles",
                "layout residue",
                "dominant mechanism",
            ],
            rows,
            title="A3: O3's instruction win vs realized win (one setup)",
        ),
    )
    # O3 reduces instructions nearly everywhere...
    assert sum(1 for _, ir, __ in gaps if ir > 1.0) >= 9
    # ...but the realized outcome diverges from the instruction trend for
    # a meaningful part of the suite (the layout-sensitive residue).
    divergent = [abs(cr - ir) for _, ir, cr in gaps]
    assert max(divergent) > 0.02

    exp = experiment("sphinx3")
    benchmark.pedantic(
        lambda: attribute_delta(
            exp.run(BASE), exp.run(TREATMENT), BASE.machine_config()
        ),
        rounds=3,
        iterations=1,
    )
