"""T2 — Table: the benchmark suite (paper Table "benchmarks").

For each workload: modules, static size, dynamic instruction count and
headline microarchitectural rates at the default setup — the
character sheet the paper gives for its SPEC CPU2006 C programs.
"""

from repro import workloads
from repro.core.report import render_table

from common import BASE, experiment, publish


def test_t2_workload_table(benchmark):
    rows = []
    for wl in workloads.suite():
        exp = experiment(wl.name)
        m = exp.run(BASE)
        c = m.counters
        rows.append(
            [
                wl.name,
                len(wl.sources),
                f"{c.instructions:,}",
                f"{c.cpi:.2f}",
                f"{c.mispredict_rate:.1%}",
                f"{c.l1d_miss_rate:.1%}",
                ", ".join(wl.tags[:2]),
            ]
        )
    publish(
        "T2_workloads",
        render_table(
            [
                "benchmark",
                "modules",
                "instructions (test)",
                "CPI",
                "mispredict",
                "L1D miss",
                "character",
            ],
            rows,
            title="T2: workload suite at the default setup (core2/gcc/O2)",
        ),
    )
    assert len(rows) == 12

    # Benchmark: one full measured (uncached) run of the fastest workload.
    exp = experiment("sphinx3")

    def fresh_run():
        exp.clear_run_cache()
        return exp.run(BASE)

    benchmark.pedantic(fresh_run, rounds=3, iterations=1)
