"""F3 — THE headline figure (paper Figure 3): "The effect of UNIX
environment size on the speedup of O3 on Core 2" for perlbench.

The paper's result: the measured O3-over-O2 speedup swings roughly from
0.88x to 1.09x as the environment grows byte by byte — the *conclusion*
("is O3 beneficial?") depends on an unreported setup parameter.  This
bench regenerates the series and asserts the shape: speedups on both
sides of 1.0 with a multi-percent swing.
"""

from repro.core.bias import env_size_study
from repro.core.report import render_series

from common import BASE, TREATMENT, ENV_SWEEP_FINE, experiment, publish

#: The paper sweeps 0..4096 bytes; we sample one fine alignment period at
#: two offsets (ENV_SWEEP_FINE) plus a coarse scan of the full range.
COARSE = list(range(100, 4196, 256))


def test_f3_envsize_perlbench(benchmark):
    exp = experiment("perlbench")
    sweep = sorted(set(ENV_SWEEP_FINE + COARSE))
    study = env_size_study(exp, BASE, TREATMENT, sweep)
    rep = study.speedup_bias()

    chart = render_series(
        study.points,
        study.speedups,
        title=(
            "F3: speedup of O3 over O2 vs UNIX environment size "
            "(perlbench, core2, gcc)"
        ),
        reference=1.0,
    )
    footer = (
        f"\nspeedup range: [{rep.stats.minimum:.4f}, {rep.stats.maximum:.4f}]"
        f"  bias magnitude: {rep.magnitude:.4f}"
        f"  conclusion flips: {'YES' if rep.flips else 'no'}"
        "\npaper's Figure 3 (hardware): range ~[0.88, 1.09], flips: YES"
    )
    publish("F3_envsize_perlbench", chart + footer)

    # Headline acceptance criteria (also pinned by tests/integration).
    assert rep.flips, "conclusion must depend on the environment size"
    assert rep.magnitude > 1.02

    def one_point():
        exp.clear_run_cache()
        return exp.run(BASE.with_changes(env_bytes=132))

    benchmark.pedantic(one_point, rounds=3, iterations=1)
