"""F4 — Figure: environment-size bias across the whole suite (paper
Figure: per-benchmark violin of O3-over-O2 speedups across environment
sizes).

The paper's shape: most benchmarks are measurably biased by environment
size; magnitudes differ widely; a few flip their O2-vs-O3 conclusion.
"""

from repro import workloads
from repro.core.bias import env_size_study
from repro.core.report import render_table

from common import BASE, TREATMENT, experiment, parallel_sweep, publish

#: Both stack-alignment regimes at several 64-byte phases.
ENV_SIZES = list(range(100, 356, 16))


def test_f4_envsize_suite(benchmark):
    rows = []
    magnitudes = {}
    for wl in workloads.suite():
        exp = experiment(wl.name)
        parallel_sweep(
            exp,
            [
                s.with_changes(env_bytes=env)
                for env in ENV_SIZES
                for s in (BASE, TREATMENT)
            ],
        )
        study = env_size_study(exp, BASE, TREATMENT, ENV_SIZES)
        rep = study.speedup_bias()
        magnitudes[wl.name] = rep.magnitude
        rows.append(
            [
                wl.name,
                f"{rep.stats.minimum:.4f}",
                f"{rep.stats.median:.4f}",
                f"{rep.stats.maximum:.4f}",
                f"{rep.magnitude:.4f}",
                "YES" if rep.flips else "",
            ]
        )
    publish(
        "F4_envsize_suite",
        render_table(
            [
                "benchmark",
                "min speedup",
                "median",
                "max speedup",
                "bias",
                "flips?",
            ],
            rows,
            title=(
                f"F4: O3/O2 speedup across {len(ENV_SIZES)} environment "
                "sizes (core2, gcc)"
            ),
        ),
    )
    # Shapes from the paper: bias is commonplace (most benchmarks move)
    # and uneven (perlbench among the most affected; at least one flip).
    biased = [name for name, m in magnitudes.items() if m > 1.001]
    assert len(biased) >= 8, f"expected widespread bias, got {biased}"
    assert any(r[5] == "YES" for r in rows)

    exp = experiment("sphinx3")
    benchmark.pedantic(
        lambda: env_size_study(exp, BASE, TREATMENT, ENV_SIZES[:4]),
        rounds=1,
        iterations=1,
    )
