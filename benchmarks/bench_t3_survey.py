"""T3 — Table: the literature survey (paper: "133 recent papers from
ASPLOS, PACT, PLDI, and CGO").

Regenerates the survey's reported numbers from the (synthetic, clearly
labelled) corpus: papers per venue, how many report the biased setup
parameters (none), single-setup prevalence, statistics usage.
"""

from repro.core.report import render_table
from repro.core.survey import (
    bias_blind_count,
    generate_corpus,
    survey_table,
)

from common import publish


def test_t3_survey_table(benchmark):
    corpus = benchmark.pedantic(generate_corpus, rounds=5, iterations=1)
    rows = survey_table(corpus)
    publish(
        "T3_survey",
        render_table(
            ["metric", "value"],
            rows,
            title=(
                "T3: literature survey (synthetic corpus consistent with "
                "the paper's aggregates)"
            ),
        ),
    )
    assert len(corpus) == 133
    assert bias_blind_count(corpus) == 133
