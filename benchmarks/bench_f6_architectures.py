"""F6 — Figure: bias is commonplace across architectures (paper: "all
architectures that we tried (Pentium 4, Core 2, and m5 O3CPU)").

The same environment-size sweep runs on all three machine models; every
one must show measurable bias (with different magnitudes/shapes — the
models differ in exactly the structures that carry the bias).
"""

from repro.core.bias import env_size_study
from repro.core.report import render_table

from common import BASE, TREATMENT, experiment, publish

ENV_SIZES = list(range(100, 296, 8))
MACHINES = ("core2", "pentium4", "m5_o3cpu")


def test_f6_bias_on_all_architectures(benchmark):
    exp = experiment("perlbench")
    rows = []
    magnitudes = {}
    for machine in MACHINES:
        base = BASE.with_changes(machine=machine)
        treatment = TREATMENT.with_changes(machine=machine)
        study = env_size_study(exp, base, treatment, ENV_SIZES)
        rep = study.speedup_bias()
        raw = study.base_bias()
        magnitudes[machine] = raw.magnitude
        rows.append(
            [
                machine,
                f"{rep.stats.minimum:.4f}",
                f"{rep.stats.maximum:.4f}",
                f"{rep.magnitude:.4f}",
                f"{raw.magnitude:.4f}",
                "YES" if rep.flips else "",
            ]
        )
    publish(
        "F6_architectures",
        render_table(
            [
                "machine",
                "speedup min",
                "speedup max",
                "speedup bias",
                "O2 runtime bias",
                "flips?",
            ],
            rows,
            title=(
                "F6: environment-size bias on every architecture "
                "(perlbench, gcc)"
            ),
        ),
    )
    # The paper's claim: no architecture is immune.
    for machine, magnitude in magnitudes.items():
        assert magnitude > 1.01, f"{machine} shows no runtime bias"

    benchmark.pedantic(
        lambda: env_size_study(
            exp,
            BASE.with_changes(machine="m5_o3cpu"),
            TREATMENT.with_changes(machine="m5_o3cpu"),
            ENV_SIZES[:3],
        ),
        rounds=1,
        iterations=1,
    )
