"""F7 — Figure: bias is commonplace across compilers (paper: "both
compilers that we tried (gcc and Intel's C compiler)").

The environment-size study repeated with the icc vendor profile, plus a
link-order check: icc's different inlining/unrolling/alignment heuristics
change the *magnitude* of the bias, not its existence.
"""

from repro.core.bias import env_size_study, link_order_study
from repro.core.report import render_table

from common import BASE, TREATMENT, experiment, publish

ENV_SIZES = list(range(100, 296, 8))


def test_f7_bias_with_both_compilers(benchmark):
    exp = experiment("perlbench")
    rows = []
    magnitudes = {}
    for compiler in ("gcc", "icc"):
        base = BASE.with_changes(compiler=compiler)
        treatment = TREATMENT.with_changes(compiler=compiler)
        env_rep = env_size_study(exp, base, treatment, ENV_SIZES).speedup_bias()
        link_rep = link_order_study(
            exp, base, treatment, max_orders=6
        ).speedup_bias()
        magnitudes[compiler] = env_rep.magnitude
        rows.append(
            [
                compiler,
                f"{env_rep.stats.minimum:.4f}",
                f"{env_rep.stats.maximum:.4f}",
                f"{env_rep.magnitude:.4f}",
                "YES" if env_rep.flips else "",
                f"{link_rep.magnitude:.4f}",
            ]
        )
    publish(
        "F7_compilers",
        render_table(
            [
                "compiler",
                "env: speedup min",
                "env: speedup max",
                "env bias",
                "env flips?",
                "link-order bias",
            ],
            rows,
            title="F7: O3/O2 bias with both vendor profiles (perlbench, core2)",
        ),
    )
    # The paper's claim: neither compiler is immune.
    for compiler, magnitude in magnitudes.items():
        assert magnitude > 1.005, f"{compiler} shows no env bias"

    benchmark.pedantic(
        lambda: env_size_study(
            exp,
            BASE.with_changes(compiler="icc"),
            TREATMENT.with_changes(compiler="icc"),
            ENV_SIZES[:3],
        ),
        rounds=1,
        iterations=1,
    )
