"""F1 — Figure: distribution of perlbench runtimes across link orders
(paper Figure 1: violin plots of cycles over ~33 link orders, O2 vs O3).

perlbench has three modules (six orders); the violin summarizes the
runtime distribution per optimization level, showing that a single link
order is one draw from a spread.
"""

from repro.core.bias import link_order_study
from repro.core.report import render_violin
from repro.core.stats import kernel_density

from common import BASE, TREATMENT, experiment, publish


def test_f1_linkorder_violins(benchmark):
    exp = experiment("perlbench")
    study = link_order_study(exp, BASE, TREATMENT, max_orders=6)

    blocks = []
    for label, cycles in (
        ("O2", study.base_cycles),
        ("O3", study.treatment_cycles),
    ):
        vs = kernel_density(cycles, points=48)
        blocks.append(
            render_violin(
                vs,
                title=f"F1: perlbench cycles across {len(cycles)} link "
                f"orders — {label}",
            )
        )
        blocks.append("")
    spread2 = study.base_bias().magnitude
    spread3 = study.treatment_bias().magnitude
    blocks.append(f"runtime spread (max/min): O2 {spread2:.4f}  O3 {spread3:.4f}")
    publish("F1_linkorder_violin", "\n".join(blocks))

    # Shape assertions: relinking must genuinely move both distributions.
    assert spread2 > 1.0005
    assert spread3 > 1.0005

    benchmark.pedantic(
        lambda: kernel_density(study.base_cycles, points=48),
        rounds=5,
        iterations=1,
    )
