"""PERF — pinned micro-bench behind the perf regression gate.

Deliberately tiny and fully pinned (one workload, four environment
sizes, both O-levels): the point is not the table it prints but that two
runs of it — on any host, any day — publish byte-identical artifacts
and identical deterministic counters.  The perf-smoke CI job runs this
bench twice into two ``REPRO_BENCH_RESULTS`` directories and diffs the
sidecars with ``tools/bench_compare.py``; any deterministic-field drift
fails the build, while wall-clock fields (``engine.ips``,
``engine.run_seconds``) only get a coarse threshold.

Run with ``REPRO_ENGINE_PROFILE=1`` (and ``REPRO_BENCH_JOBS=1`` so the
engine runs in-process) to also record the engine's opcode-class
dispatch mix in the sidecar's ``perf`` section.
"""

from repro.core.report import render_table
from repro.obs import metrics as obs_metrics

from common import BASE, TREATMENT, experiment, parallel_sweep, publish

#: Pinned environment sizes (bytes) — four points spanning one stack
#: alignment period, chosen once and never changed: the gate compares
#: runs of the *same* bench, so the exact values only need to be stable.
ENV_POINTS = (100, 116, 132, 148)


def test_perf_micro():
    exp = experiment("libquantum")
    setups = [
        base.with_changes(env_bytes=n)
        for n in ENV_POINTS
        for base in (BASE, TREATMENT)
    ]
    parallel_sweep(exp, setups)
    rows = []
    for n in ENV_POINTS:
        m2 = exp.run(BASE.with_changes(env_bytes=n))
        m3 = exp.run(TREATMENT.with_changes(env_bytes=n))
        assert m2.cycles > 0 and m3.cycles > 0
        rows.append(
            [
                str(n),
                f"{m2.cycles:.2f}",
                f"{m3.cycles:.2f}",
                f"{m2.cycles / m3.cycles:.4f}",
            ]
        )
    counters = obs_metrics.registry().counters()
    publish(
        "PERF_micro",
        render_table(
            ["env bytes", "O2 cycles", "O3 cycles", "O2/O3 speedup"],
            rows,
            title="PERF: pinned libquantum micro-bench (regression gate)",
        ),
        meta={
            "workload": "libquantum",
            "env_points": list(ENV_POINTS),
            "engine_runs": counters.get("engine.runs", 0),
            "engine_instructions": counters.get("engine.instructions", 0),
        },
    )
