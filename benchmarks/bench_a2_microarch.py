"""A2 — Ablation: which microarchitectural features carry the bias?

Knocks out model features one at a time (loop stream detector, alignment
penalties, window straddle cost) and re-measures the perlbench
environment-size bias.  DESIGN.md's claim: the LSD asymmetry and the
stack alignment penalties are the load-bearing mechanisms.
"""

from repro.core.bias import env_size_study
from repro.core.report import render_table

from common import BASE, TREATMENT, experiment, publish

ENV_SIZES = list(range(100, 228, 8))

KNOCKOUTS = (
    ("full model", {}),
    ("no LSD", {"has_lsd": False}),
    ("no unaligned penalty", {"unaligned_cycles": 0.0}),
    ("no split penalty", {"split_line_cycles": 0.0}),
    ("no straddle cost", {"straddle_cycles": 0.0}),
    (
        "no alignment penalties at all",
        {"unaligned_cycles": 0.0, "split_line_cycles": 0.0},
    ),
)


def test_a2_microarch_knockouts(benchmark):
    exp = experiment("perlbench")
    rows = []
    results = {}
    for label, overrides in KNOCKOUTS:
        machine = BASE.machine_config().with_overrides(**overrides)
        base = BASE.with_changes(machine=machine)
        treatment = TREATMENT.with_changes(machine=machine)
        study = env_size_study(exp, base, treatment, ENV_SIZES)
        rep = study.speedup_bias()
        raw = study.base_bias()
        results[label] = (raw.magnitude, rep.flips)
        rows.append(
            [
                label,
                f"{raw.magnitude:.4f}",
                f"{rep.stats.minimum:.4f}..{rep.stats.maximum:.4f}",
                "YES" if rep.flips else "",
            ]
        )
    publish(
        "A2_microarch",
        render_table(
            ["model variant", "O2 env bias", "speedup range", "flips?"],
            rows,
            title="A2: feature knockouts vs environment-size bias "
            "(perlbench, core2, gcc)",
        ),
    )
    full_bias = results["full model"][0]
    no_align_bias = results["no alignment penalties at all"][0]
    # Removing alignment penalties must remove most of the runtime bias.
    assert (no_align_bias - 1.0) < (full_bias - 1.0) * 0.5

    benchmark.pedantic(
        lambda: env_size_study(exp, BASE, TREATMENT, ENV_SIZES[:3]),
        rounds=1,
        iterations=1,
    )
