"""F5 — Figure: the *cause* of environment-size bias (paper Figure 5 /
Section 4: stack data alignment).

Three pieces of evidence, as in the paper's causal analysis:

1. raw perlbench O2 cycles vs environment size, annotated with the
   unaligned-access and line-split counters (they move together),
2. counter-vs-cycles correlations across the sweep (the suspects rank
   first),
3. the intervention: force-aligning the stack pointer removes the bias.
"""

from repro.analysis import counter_correlations, confirm_stack_alignment_cause
from repro.core.bias import env_size_study
from repro.core.report import render_table

from common import BASE, TREATMENT, experiment, publish

ENV_SIZES = list(range(100, 196, 4))


def test_f5_cause_alignment(benchmark):
    exp = experiment("perlbench")
    study = env_size_study(exp, BASE, TREATMENT, ENV_SIZES)

    rows = []
    for point, m in zip(study.points, study.base_measurements):
        c = m.counters
        rows.append(
            [
                point,
                f"{c.cycles:.0f}",
                c.unaligned_accesses,
                c.line_splits,
                c.l1d_misses,
            ]
        )
    table = render_table(
        ["env bytes", "O2 cycles", "unaligned", "line splits", "L1D misses"],
        rows,
        title="F5a: perlbench O2 cycles and alignment counters vs env size",
    )

    ranked = counter_correlations(study.base_measurements)
    corr_table = render_table(
        ["counter", "correlation with cycles"],
        [[name, f"{r:+.3f}"] for name, r in ranked[:6]],
        title="F5b: counter correlations across the sweep",
    )

    intervention = confirm_stack_alignment_cause(
        exp, BASE, TREATMENT, env_sizes=ENV_SIZES, aligned_to=64
    )
    publish(
        "F5_cause_alignment",
        "\n\n".join([table, corr_table, "F5c: " + intervention.summary_line()]),
    )

    # The paper's conclusion, as assertions:
    top_counters = {name for name, __ in ranked[:3]}
    assert top_counters & {"unaligned_accesses", "line_splits"}
    assert intervention.bias_removed_fraction > 0.5

    benchmark.pedantic(
        lambda: counter_correlations(study.base_measurements),
        rounds=3,
        iterations=1,
    )
