"""A1 — Ablation: linker function-alignment policy vs link-order bias.

DESIGN.md calls out function alignment as the knob separating two
link-order mechanisms: with coarse alignment (64 = one cache line) a
relink can only change *which sets* code occupies; with byte alignment it
also changes every intra-function fetch-window offset.  This ablation
quantifies both regimes.
"""

from repro.core.bias import link_order_study
from repro.core.report import render_table

from common import BASE, TREATMENT, experiment, publish

ALIGNMENTS = (1, 4, 16, 64)


def test_a1_function_alignment_ablation(benchmark):
    exp = experiment("perlbench")
    rows = []
    magnitudes = {}
    for alignment in ALIGNMENTS:
        base = BASE.with_changes(function_alignment=alignment)
        treatment = TREATMENT.with_changes(function_alignment=alignment)
        study = link_order_study(exp, base, treatment, max_orders=6)
        raw = study.base_bias()
        rep = study.speedup_bias()
        magnitudes[alignment] = raw.magnitude
        rows.append(
            [
                alignment,
                f"{raw.magnitude:.5f}",
                f"{rep.magnitude:.5f}",
                "YES" if rep.flips else "",
            ]
        )
    publish(
        "A1_alignment_policy",
        render_table(
            [
                "function alignment",
                "O2 runtime bias (link order)",
                "speedup bias",
                "flips?",
            ],
            rows,
            title="A1: link-order bias vs linker function alignment "
            "(perlbench, core2, gcc)",
        ),
    )
    # Byte-aligned functions expose strictly more layout variation than
    # window-aligned ones.
    assert magnitudes[1] >= magnitudes[16] * 0.5  # both nonzero regimes
    assert all(m > 1.0 for m in magnitudes.values())

    benchmark.pedantic(
        lambda: exp.build(BASE.with_changes(function_alignment=1)),
        rounds=1,
        iterations=1,
    )
