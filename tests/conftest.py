"""Shared fixtures.

Compilation and simulation are the expensive operations, so fixtures that
build executables or run experiments are session-scoped and shared across
test modules.
"""

from __future__ import annotations

import pytest

from repro.arch import execute, get_machine
from repro.core import Experiment, ExperimentalSetup
from repro.os import Environment, load_process
from repro.toolchain import compile_program, compile_unit, link
from repro import workloads

#: A small but representative two-module program used across toolchain
#: and engine tests: loops, calls, globals, a local array, branches.
SMALL_SOURCES = {
    "kernel": """
int table[128];

func fill(n) {
    var i;
    for (i = 0; i < n; i = i + 1) {
        table[i] = i * 3 + 1;
    }
    return 0;
}

func total(n) {
    var i; var s; var buf[8];
    for (i = 0; i < 8; i = i + 1) { buf[i] = i; }
    s = 0;
    for (i = 0; i < n; i = i + 1) {
        s = s + table[i] + buf[i & 7];
    }
    return s;
}
""",
    "main": """
int table[128];

func main() {
    fill(96);
    return total(96);
}
""",
}

SMALL_EXPECTED = sum(i * 3 + 1 for i in range(96)) + sum(i & 7 for i in range(96))


def build_small(opt_level: int = 2, profile: str = "gcc", order=None):
    """Compile+link the shared small program."""
    modules = compile_program(SMALL_SOURCES, opt_level=opt_level, profile=profile)
    return link(modules, order=order)


def run_exe(exe, env=None, inputs=None, machine="core2", stack_align=4):
    """Load and execute an executable on a fresh machine."""
    image = load_process(
        exe,
        environment=env if env is not None else Environment.typical(),
        inputs=inputs,
        stack_align=stack_align,
    )
    return execute(image, get_machine(machine).build())


@pytest.fixture(scope="session")
def small_exe_o2():
    return build_small(2)


@pytest.fixture(scope="session")
def small_exe_o0():
    return build_small(0)


#: Session-wide compiled-workload cache: one Experiment (and therefore
#: one set of memoized builds/runs) per (workload, size, seed), shared
#: across every test module that asks for it.
_EXPERIMENT_CACHE = {}


def shared_experiment(name: str, size: str = "test", seed: int = 0):
    """Session-cached experiment handle for ``name``.

    Compilation dominates test wall-clock; sharing one Experiment per
    (workload, size, seed) means each binary is built once per pytest
    session, not once per test module.  Only use it for tests that do
    not mutate the experiment's caches.
    """
    key = (name, size, seed)
    exp = _EXPERIMENT_CACHE.get(key)
    if exp is None:
        exp = Experiment(workloads.get(name), size=size, seed=seed)
        _EXPERIMENT_CACHE[key] = exp
    return exp


@pytest.fixture(scope="session")
def workload_experiments():
    """Fixture face of :func:`shared_experiment` — a callable
    ``(name, size="test", seed=0) -> Experiment`` backed by the
    session-wide compiled-workload cache."""
    return shared_experiment


@pytest.fixture(scope="session")
def perlbench_experiment():
    """Session-shared perlbench experiment (builds are memoized on it)."""
    return shared_experiment("perlbench")


@pytest.fixture(scope="session")
def base_setup():
    return ExperimentalSetup(machine="core2", compiler="gcc", opt_level=2)


def compile_single(source: str, opt_level: int = 2, profile: str = "gcc"):
    """Compile a single-module program and return the executable."""
    return link([compile_unit(source, "m", opt_level=opt_level, profile=profile)])


def run_main(source: str, opt_level: int = 2, profile: str = "gcc", inputs=None):
    """Compile and run a single-module program; returns the exit value."""
    return run_exe(
        compile_single(source, opt_level, profile), inputs=inputs
    ).exit_value
