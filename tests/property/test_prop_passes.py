"""Property tests: optimizer-pass infrastructure invariants.

On compiled real code (the workload suite's functions), the machine-level
passes must be idempotent — running any cleanup pass a second time
changes nothing.  Non-idempotence means a pass leaves work behind that it
would itself do differently next time, a classic source of
phase-ordering heisenbugs.
"""

from __future__ import annotations

import pytest

from repro import workloads
from repro.toolchain.compiler import compile_unit
from repro.toolchain.opt import (
    eliminate_dead_code,
    local_value_number,
    peephole_optimize,
    schedule_blocks,
    simplify_cfg,
)

_CASES = [
    (wl.name, mod_name, src)
    for wl in workloads.suite()[:6]
    for mod_name, src in wl.sources.items()
]


def _snapshot(func):
    return [
        (blk.label, blk.align, [repr(i) for i in blk.instrs])
        for blk in func.blocks
    ]


@pytest.mark.parametrize(
    "pass_fn",
    [peephole_optimize, local_value_number, eliminate_dead_code, simplify_cfg,
     schedule_blocks],
    ids=["peephole", "lvn", "dce", "cfg", "schedule"],
)
@pytest.mark.parametrize(
    "case", _CASES, ids=[f"{w}:{m}" for w, m, _ in _CASES]
)
def test_pass_idempotent_on_optimized_code(pass_fn, case):
    __, mod_name, src = case
    module = compile_unit(src, mod_name, opt_level=2)
    for func in module.functions.values():
        pass_fn(func)
        first = _snapshot(func)
        pass_fn(func)
        assert _snapshot(func) == first, func.name
