"""Property tests: execution-engine invariants on random programs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.arch import execute, get_machine
from repro.os import Environment, load_process
from repro.toolchain import compile_unit, link

from tests.property.test_prop_compiler import minic_programs


def _measure(source, machine="core2", env_bytes=None):
    exe = link([compile_unit(source, "m", opt_level=2)])
    env = (
        Environment.typical()
        if env_bytes is None
        else Environment.of_size(env_bytes)
    )
    img = load_process(exe, env)
    return execute(
        img, get_machine(machine).build(), max_instructions=2_000_000
    )


@pytest.mark.slow
@settings(max_examples=40, deadline=None)
@given(minic_programs())
def test_counter_consistency(source):
    c = _measure(source).counters
    # Structural invariants of the counter set.
    assert c.instructions > 0
    assert c.cycles >= c.instructions * 0.33  # issue cost floor
    assert 0 <= c.mispredicts <= c.branches
    assert 0 <= c.taken_branches <= c.branches
    assert c.calls == c.returns  # main always returns before HALT
    assert c.lsd_covered <= c.instructions
    assert c.l2_misses <= c.l1i_misses + c.l1d_misses
    # Loads/stores include the call/return stack traffic.
    assert c.loads >= c.returns
    assert c.stores >= c.calls


@pytest.mark.slow
@settings(max_examples=30, deadline=None)
@given(minic_programs())
def test_determinism(source):
    a = _measure(source)
    b = _measure(source)
    assert a.exit_value == b.exit_value
    assert a.counters.as_dict() == b.counters.as_dict()


@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(minic_programs())
def test_env_size_never_changes_architectural_counters(source):
    """Environment size may move cycles and alignment counters, but the
    architectural event counts (instructions, branches, memory ops) are
    properties of the program, not of the stack address."""
    a = _measure(source, env_bytes=100).counters
    b = _measure(source, env_bytes=357).counters
    assert a.instructions == b.instructions
    assert a.branches == b.branches
    assert a.taken_branches == b.taken_branches
    assert a.loads == b.loads
    assert a.stores == b.stores
    assert a.calls == b.calls


@settings(max_examples=20, deadline=None)
@given(minic_programs())
def test_perfect_alignment_on_aligned_stack(source):
    """With the loader forcing 16-byte stacks, word code can never pay
    unaligned or split penalties (the intervention behind F5)."""
    exe = link([compile_unit(source, "m", opt_level=2)])
    img = load_process(exe, Environment.typical(), stack_align=16)
    c = execute(
        img, get_machine("core2").build(), max_instructions=2_000_000
    ).counters
    assert c.unaligned_accesses == 0
    assert c.line_splits == 0
