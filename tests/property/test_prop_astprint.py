"""Property tests: the pretty-printer against the parser and the machine.

Reuses the random-program generator from the differential compiler tests:
for arbitrary minic programs, printing is a fixpoint after one rendering,
the printed source re-parses, and — the strong form — the printed program
*computes the same result* as the original.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

#: Hypothesis sweeps over whole random programs — heavyweight; the
#: fast inner loop (-m 'not slow') skips them.
pytestmark = pytest.mark.slow

from repro.toolchain.astprint import format_unit
from repro.toolchain.parser import parse_source

from tests.property.test_prop_compiler import _run, minic_programs


@settings(max_examples=80, deadline=None)
@given(minic_programs())
def test_print_parse_fixpoint(source):
    once = format_unit(parse_source(source))
    twice = format_unit(parse_source(once))
    assert once == twice


@settings(max_examples=80, deadline=None)
@given(minic_programs())
def test_printed_source_reparses_and_reanalyzes(source):
    from repro.toolchain.sema import analyze_unit

    printed = format_unit(parse_source(source))
    analyze_unit(parse_source(printed))


@settings(max_examples=40, deadline=None)
@given(minic_programs())
def test_printing_preserves_semantics(source):
    printed = format_unit(parse_source(source))
    assert _run(printed, 2) == _run(source, 2)
