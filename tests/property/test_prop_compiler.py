"""Property tests: the toolchain is semantics-preserving.

The crown-jewel property: for *random minic programs*, every optimization
level, every vendor profile, and every link order produces the same
result as the unoptimized build.  This differentially tests the parser,
code generator, all optimizer passes, the linker and the engine against
each other.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.arch import execute, get_machine
from repro.os import Environment, load_process
from repro.toolchain import compile_unit, link

# -- program generator ------------------------------------------------------

_VARS = ("a", "b", "c")
_COUNTERS = ("i", "j", "k")
_ARR = "arr"
_ARR_LEN = 8


@st.composite
def _expr(draw, depth=0):
    choices = ["num", "var", "arr"]
    if depth < 3:
        choices += ["bin", "bin", "unary", "cmp"]
    kind = draw(st.sampled_from(choices))
    if kind == "num":
        return str(draw(st.integers(min_value=-64, max_value=64)))
    if kind == "var":
        return draw(st.sampled_from(_VARS))
    if kind == "arr":
        inner = draw(_expr(depth=depth + 1))
        return f"{_ARR}[({inner}) & {_ARR_LEN - 1}]"
    if kind == "unary":
        op = draw(st.sampled_from(["-", "~", "!"]))
        return f"{op}({draw(_expr(depth=depth + 1))})"
    if kind == "cmp":
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return f"(({draw(_expr(depth=depth + 1))}) {op} ({draw(_expr(depth=depth + 1))}))"
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>"]))
    lhs = draw(_expr(depth=depth + 1))
    rhs = draw(_expr(depth=depth + 1))
    if op in ("<<", ">>"):
        rhs = f"(({rhs}) & 7)"
    return f"(({lhs}) {op} ({rhs}))"


@st.composite
def _stmt(draw, depth=0):
    choices = ["assign", "assign", "store", "if"]
    if depth < 2:
        choices += ["for", "while"]
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        var = draw(st.sampled_from(_VARS))
        return f"{var} = {draw(_expr())};"
    if kind == "store":
        return (
            f"{_ARR}[({draw(_expr())}) & {_ARR_LEN - 1}] = {draw(_expr())};"
        )
    if kind == "if":
        cond = draw(_expr())
        then = draw(_block(depth=depth + 1))
        if draw(st.booleans()):
            els = draw(_block(depth=depth + 1))
            return f"if ({cond}) {{ {then} }} else {{ {els} }}"
        return f"if ({cond}) {{ {then} }}"
    # Each nesting depth owns its loop counter so nested loops can never
    # clobber an enclosing loop's induction variable.
    counter = _COUNTERS[depth]
    if kind == "for":
        trips = draw(st.integers(min_value=0, max_value=9))
        step = draw(st.integers(min_value=1, max_value=3))
        body = draw(_block(depth=depth + 1, no_decls=True))
        return (
            f"for ({counter} = 0; {counter} < {trips}; "
            f"{counter} = {counter} + {step}) {{ {body} }}"
        )
    # while with a bounded counter to guarantee termination
    trips = draw(st.integers(min_value=0, max_value=8))
    body = draw(_block(depth=depth + 1, no_decls=True))
    return (
        f"{counter} = 0; while ({counter} < {trips}) "
        f"{{ {body} {counter} = {counter} + 1; }}"
    )


@st.composite
def _block(draw, depth=0, no_decls=False):
    n = draw(st.integers(min_value=1, max_value=3))
    return " ".join(draw(_stmt(depth=depth)) for __ in range(n))


@st.composite
def minic_programs(draw):
    body = draw(_block())
    inits = " ".join(
        f"{v} = {draw(st.integers(min_value=-16, max_value=16))};"
        for v in _VARS
    )
    return (
        f"int {_ARR}[{_ARR_LEN}];\n"
        "func main() {\n"
        "    var a; var b; var c; var i; var j; var k;\n"
        f"    {inits} i = 0; j = 0; k = 0;\n"
        f"    {body}\n"
        "    return (a ^ b) + c + arr[0] + arr[7] + i + j * 3 + k;\n"
        "}\n"
    )


def _run(source: str, opt_level: int, profile: str = "gcc") -> int:
    exe = link([compile_unit(source, "m", opt_level=opt_level, profile=profile)])
    img = load_process(exe, Environment.typical())
    return execute(
        img, get_machine("core2").build(), max_instructions=2_000_000
    ).exit_value


@pytest.mark.slow
@settings(max_examples=60, deadline=None)
@given(minic_programs())
def test_optimization_levels_agree(source):
    reference = _run(source, 0)
    for level in (1, 2, 3):
        assert _run(source, level) == reference, f"O{level} diverged"


@pytest.mark.slow
@settings(max_examples=30, deadline=None)
@given(minic_programs())
def test_vendor_profiles_agree(source):
    assert _run(source, 3, "gcc") == _run(source, 3, "icc")


@pytest.mark.slow
@settings(max_examples=30, deadline=None)
@given(minic_programs(), st.integers(min_value=0, max_value=4000))
def test_environment_never_changes_results(source, extra_bytes):
    exe = link([compile_unit(source, "m", opt_level=2)])
    env = Environment.of_size(
        Environment.typical().total_bytes + 3 + extra_bytes,
        Environment.typical(),
    )
    img = load_process(exe, env)
    got = execute(
        img, get_machine("core2").build(), max_instructions=2_000_000
    ).exit_value
    assert got == _run(source, 2)


@pytest.mark.slow
@settings(max_examples=20, deadline=None)
@given(minic_programs())
def test_machines_agree_on_results(source):
    exe = link([compile_unit(source, "m", opt_level=2)])
    values = set()
    for machine in ("core2", "pentium4", "m5_o3cpu"):
        img = load_process(exe, Environment.typical())
        values.add(
            execute(
                img, get_machine(machine).build(), max_instructions=2_000_000
            ).exit_value
        )
    assert len(values) == 1
