"""Property tests: refops mirror the engine's ALU semantics exactly.

Each operator is executed on the real machine (a tiny program computing
``a <op> b``) and compared against the corresponding refops helper — the
contract that makes workload references trustworthy oracles.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.arch import execute, get_machine
from repro.os import Environment, load_process
from repro.toolchain import compile_unit, link
from repro.workloads import refops

_I63 = 2**62  # keep CONST immediates comfortably in range

operands = st.integers(min_value=-_I63, max_value=_I63)
small_operands = st.integers(min_value=-(2**31), max_value=2**31)


def _machine_eval(op: str, a: int, b: int) -> int:
    src = f"""
    int ga = {a};
    int gb = {b};
    func main() {{ return ga {op} gb; }}
    """
    exe = link([compile_unit(src, "m", opt_level=0)])
    img = load_process(exe, Environment.typical())
    return execute(img, get_machine("core2").build()).exit_value


@settings(max_examples=60, deadline=None)
@given(small_operands, small_operands)
def test_mul_matches(a, b):
    assert _machine_eval("*", a, b) == refops.mul(a, b)


@settings(max_examples=60, deadline=None)
@given(operands, st.integers(min_value=0, max_value=70))
def test_shl_matches(a, b):
    assert _machine_eval("<<", a, b) == refops.shl(a, b)


@settings(max_examples=60, deadline=None)
@given(operands, st.integers(min_value=0, max_value=70))
def test_shr_matches(a, b):
    assert _machine_eval(">>", a, b) == refops.shr(a, b)


@settings(max_examples=60, deadline=None)
@given(operands, operands)
def test_bitwise_match(a, b):
    assert _machine_eval("&", a, b) == refops.band(a, b)
    assert _machine_eval("|", a, b) == refops.bor(a, b)
    assert _machine_eval("^", a, b) == refops.bxor(a, b)


@settings(max_examples=60, deadline=None)
@given(operands, operands)
def test_division_matches(a, b):
    assume(b != 0)
    assert _machine_eval("/", a, b) == refops.sdiv(a, b)
    assert _machine_eval("%", a, b) == refops.smod(a, b)


@settings(max_examples=40, deadline=None)
@given(operands)
def test_wrap64_is_idempotent_and_in_range(a):
    w = refops.wrap64(a)
    assert refops.wrap64(w) == w
    assert -(2**63) <= w < 2**63


@settings(max_examples=40, deadline=None)
@given(operands, operands)
def test_division_identity(a, b):
    assume(b != 0)
    q, r = refops.sdiv(a, b), refops.smod(a, b)
    assert q * b + r == a
    assert abs(r) < abs(b)
