"""Property tests: statistics against scipy and basic invariants."""

from __future__ import annotations

import hypothesis.strategies as st
import scipy.stats
from hypothesis import assume, given, settings

from repro.core.stats import (
    SummaryStats,
    kernel_density,
    normal_ppf,
    quantile,
    t_confidence_interval,
    t_ppf,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples = st.lists(finite_floats, min_size=2, max_size=40)


@settings(max_examples=150, deadline=None)
@given(samples)
def test_summary_ordering_invariants(values):
    s = SummaryStats.from_values(values)
    assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
    # The mean is computed as sum/n and may land 1 ulp outside the hull.
    slack = 4 * abs(s.maximum - s.minimum) * 1e-15 + 1e-300
    ulp = max(abs(s.minimum), abs(s.maximum)) * 1e-15
    assert s.minimum - slack - ulp <= s.mean <= s.maximum + slack + ulp
    assert s.std >= 0


@settings(max_examples=150, deadline=None)
@given(samples)
def test_t_interval_brackets_mean_and_matches_scipy(values):
    assume(SummaryStats.from_values(values).std > 1e-12)
    ci = t_confidence_interval(values, level=0.95)
    assert ci.lo <= ci.mean <= ci.hi
    n = len(values)
    mean = sum(values) / n
    se = scipy.stats.sem(values)
    lo, hi = scipy.stats.t.interval(0.95, n - 1, loc=mean, scale=se)
    assert abs(ci.lo - lo) <= max(1e-6, abs(lo) * 1e-5)
    assert abs(ci.hi - hi) <= max(1e-6, abs(hi) * 1e-5)


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=0.001, max_value=0.999))
def test_normal_ppf_inverts_cdf(p):
    assert scipy.stats.norm.cdf(normal_ppf(p)) == __import__(
        "pytest"
    ).approx(p, abs=1e-7)


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.01, max_value=0.99),
    st.integers(min_value=1, max_value=200),
)
def test_t_ppf_matches_scipy(p, df):
    ours = t_ppf(p, df)
    theirs = scipy.stats.t.ppf(p, df)
    assert abs(ours - theirs) <= max(1e-5, abs(theirs) * 1e-5)


@settings(max_examples=100, deadline=None)
@given(samples, st.floats(min_value=0.0, max_value=1.0))
def test_quantile_monotone_and_bounded(values, q):
    xs = sorted(values)
    v = quantile(xs, q)
    assert xs[0] <= v <= xs[-1]
    # Monotone in q:
    assert quantile(xs, max(0.0, q - 0.1)) <= v + 1e-9


@settings(max_examples=60, deadline=None)
@given(st.lists(finite_floats, min_size=2, max_size=25))
def test_kde_density_nonnegative_and_normalized(values):
    assume(max(values) - min(values) > 1e-9)
    vs = kernel_density(values, points=128)
    assert all(d >= 0 for d in vs.density)
    step = vs.grid[1] - vs.grid[0]
    mass = sum(vs.density) * step
    if len(vs.grid) < 4096:  # grid resolved the bandwidth
        assert 0.9 < mass < 1.1
    else:
        # Outlier-dominated samples hit the grid-size cap; the Riemann
        # sum over undersampled spikes has no tight bound, so only the
        # sign is meaningful here.
        assert mass > 0.0
