"""Property tests: linker layout invariants over random link orders and
alignments."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.toolchain import LinkLayout, compile_program, link

from tests.conftest import SMALL_SOURCES, SMALL_EXPECTED, run_exe

_MODULES = compile_program(SMALL_SOURCES, opt_level=2)

orders = st.permutations(list(SMALL_SOURCES))
alignments = st.sampled_from([1, 2, 4, 8, 16, 32, 64])


@settings(max_examples=40, deadline=None)
@given(orders, alignments)
def test_layout_invariants(order, alignment):
    exe = link(
        _MODULES,
        order=list(order),
        layout=LinkLayout(function_alignment=alignment),
    )
    placed = sorted(exe.placed, key=lambda p: p.base)
    # 1. no overlap, alignment honoured
    for pf in placed:
        assert pf.base % alignment == 0
    for a, b in zip(placed, placed[1:]):
        assert a.end <= b.base
    # 2. addresses contiguous within functions
    for pf in exe.placed:
        for i in range(pf.flat_start, pf.flat_end - 1):
            assert exe.addrs[i] + exe.sizes[i] == exe.addrs[i + 1]
    # 3. every control-flow target resolved and in range
    for i, op in enumerate(exe.ops):
        if op in (28, 29, 30, 31):
            assert 0 <= exe.targets[i] < len(exe.ops)
    # 4. data above text, no overlap between data objects
    assert exe.data_start >= exe.text_end
    spans = sorted(
        (
            addr,
            addr
            + exe.data_counts[name]
            * (8 if exe.data_kinds[name] == "words" else 1),
        )
        for name, addr in exe.data_addrs.items()
    )
    for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
        assert a_hi <= b_lo


@settings(max_examples=30, deadline=None)
@given(orders, alignments)
def test_semantics_invariant_under_layout(order, alignment):
    exe = link(
        _MODULES,
        order=list(order),
        layout=LinkLayout(function_alignment=alignment),
    )
    assert run_exe(exe).exit_value == SMALL_EXPECTED
