"""Property tests: cache model invariants against a reference model."""

from __future__ import annotations

from collections import OrderedDict
from typing import List

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.arch.cache import Cache, CacheConfig


def _reference_lru(accesses: List[int], sets: int, ways: int) -> List[bool]:
    """Oracle: dict-of-OrderedDict LRU."""
    state = {s: OrderedDict() for s in range(sets)}
    out = []
    for line in accesses:
        s = line % sets
        ways_map = state[s]
        if line in ways_map:
            ways_map.move_to_end(line)
            out.append(True)
        else:
            out.append(False)
            ways_map[line] = True
            if len(ways_map) > ways:
                ways_map.popitem(last=False)
    return out


geometries = st.sampled_from([(2, 1), (2, 2), (4, 2), (8, 4), (16, 8)])
access_lists = st.lists(
    st.integers(min_value=0, max_value=255), min_size=1, max_size=300
)


@settings(max_examples=200, deadline=None)
@given(geometries, access_lists)
def test_matches_reference_lru(geometry, accesses):
    sets, ways = geometry
    cache = Cache(CacheConfig("t", sets * ways * 64, 64, ways))
    got = [cache.access_line(a) for a in accesses]
    assert got == _reference_lru(accesses, sets, ways)


@settings(max_examples=100, deadline=None)
@given(geometries, access_lists)
def test_stats_sum_to_accesses(geometry, accesses):
    sets, ways = geometry
    cache = Cache(CacheConfig("t", sets * ways * 64, 64, ways))
    for a in accesses:
        cache.access_line(a)
    assert cache.hits + cache.misses == len(accesses)


@settings(max_examples=100, deadline=None)
@given(geometries, access_lists)
def test_capacity_never_exceeded(geometry, accesses):
    sets, ways = geometry
    cache = Cache(CacheConfig("t", sets * ways * 64, 64, ways))
    for a in accesses:
        cache.access_line(a)
        assert len(cache.resident_lines()) <= sets * ways


@settings(max_examples=100, deadline=None)
@given(geometries, access_lists)
def test_immediate_rehit(geometry, accesses):
    """Accessing any line twice in a row always hits the second time."""
    sets, ways = geometry
    cache = Cache(CacheConfig("t", sets * ways * 64, 64, ways))
    for a in accesses:
        cache.access_line(a)
        assert cache.access_line(a) is True


@settings(max_examples=100, deadline=None)
@given(geometries, access_lists)
def test_working_set_within_ways_never_misses_twice(geometry, accesses):
    """A line can only cold-miss once if its set never overflows."""
    sets, ways = geometry
    from collections import Counter, defaultdict

    per_set = defaultdict(set)
    for a in accesses:
        per_set[a % sets].add(a)
    if any(len(lines) > ways for lines in per_set.values()):
        return  # property only holds without conflict pressure
    cache = Cache(CacheConfig("t", sets * ways * 64, 64, ways))
    misses = Counter()
    for a in accesses:
        if not cache.access_line(a):
            misses[a] += 1
    assert all(count == 1 for count in misses.values())
