"""Unit tests: instruction encodings (sizes drive every layout effect)."""

import pytest

from repro.isa import Instr, Op, encoded_size
from repro.isa.encoding import block_size


class TestFixedSizes:
    @pytest.mark.parametrize(
        "op,expected",
        [(Op.NOP, 1), (Op.RET, 1), (Op.HALT, 1), (Op.MOV, 2)],
    )
    def test_one_and_two_byte_ops(self, op, expected):
        assert encoded_size(Instr(op, rd=1, ra=2)) == expected

    def test_reg_reg_alu_is_three_bytes(self):
        assert encoded_size(Instr(Op.ADD, rd=1, ra=2, rb=3)) == 3
        assert encoded_size(Instr(Op.MUL, rd=1, ra=2, rb=3)) == 3

    def test_control_transfers_are_five_bytes(self):
        assert encoded_size(Instr(Op.JMP, target="L")) == 5
        assert encoded_size(Instr(Op.CALL, target="f")) == 5
        assert encoded_size(Instr(Op.BEQZ, ra=1, target="L")) == 5


class TestImmediateWidths:
    def test_small_const_is_compact(self):
        assert encoded_size(Instr(Op.CONST, rd=1, imm=100)) == 3
        assert encoded_size(Instr(Op.CONST, rd=1, imm=-128)) == 3

    def test_large_const_grows(self):
        assert encoded_size(Instr(Op.CONST, rd=1, imm=128)) == 6
        assert encoded_size(Instr(Op.CONST, rd=1, imm=-129)) == 6

    def test_relocated_const_always_full_width(self):
        # The linker must be able to patch any address without moving code.
        assert encoded_size(Instr(Op.CONST, rd=1, imm=0, target="sym")) == 6

    def test_alu_imm_widths(self):
        assert encoded_size(Instr(Op.ADDI, rd=1, ra=1, imm=8)) == 4
        assert encoded_size(Instr(Op.ADDI, rd=1, ra=1, imm=1000)) == 7

    def test_memory_displacement_widths(self):
        assert encoded_size(Instr(Op.LOAD, rd=1, ra=14, imm=-8)) == 3
        assert encoded_size(Instr(Op.LOAD, rd=1, ra=14, imm=-4096)) == 6
        assert encoded_size(Instr(Op.STORE, ra=14, rb=2, imm=127)) == 3
        assert encoded_size(Instr(Op.STORE, ra=14, rb=2, imm=128)) == 6

    def test_boundary_values(self):
        # i8 boundary is [-128, 127].
        assert encoded_size(Instr(Op.ADDI, rd=1, ra=1, imm=127)) == 4
        assert encoded_size(Instr(Op.ADDI, rd=1, ra=1, imm=-128)) == 4
        assert encoded_size(Instr(Op.ADDI, rd=1, ra=1, imm=-129)) == 7


class TestBlockSize:
    def test_block_size_sums(self):
        instrs = [
            Instr(Op.CONST, rd=1, imm=5),  # 3
            Instr(Op.ADD, rd=1, ra=1, rb=2),  # 3
            Instr(Op.RET),  # 1
        ]
        assert block_size(instrs) == 7

    def test_empty_block(self):
        assert block_size([]) == 0
