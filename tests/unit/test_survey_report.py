"""Unit tests: literature survey corpus + report rendering."""

import pytest

from repro.core.report import (
    render_interval_row,
    render_series,
    render_table,
    render_violin,
)
from repro.core.stats import kernel_density
from repro.core.survey import (
    VENUES,
    attribute_rates,
    bias_blind_count,
    generate_corpus,
    papers_per_venue,
    single_setup_fraction,
    survey_table,
)


class TestSurveyCorpus:
    def test_exactly_133_papers(self):
        assert len(generate_corpus()) == 133

    def test_four_venues_covered(self):
        counts = papers_per_venue(generate_corpus())
        assert set(counts) == set(VENUES)
        assert all(c > 0 for c in counts.values())
        assert sum(counts.values()) == 133

    def test_hard_constraint_nobody_controls_for_bias(self):
        corpus = generate_corpus()
        assert bias_blind_count(corpus) == 133
        rates = attribute_rates(corpus)
        assert rates["reports_environment_size"] == 0.0
        assert rates["reports_link_order"] == 0.0

    def test_majority_single_platform(self):
        assert single_setup_fraction(generate_corpus()) > 0.5

    def test_deterministic(self):
        assert generate_corpus(3) == generate_corpus(3)
        assert generate_corpus(3) != generate_corpus(4)

    def test_all_records_marked_synthetic(self):
        assert all(rec.synthetic for rec in generate_corpus())

    def test_survey_table_rows(self):
        rows = dict(survey_table(generate_corpus()))
        assert rows["papers surveyed"] == "133"
        assert rows["report environment size"] == "0"
        assert rows["report link order"] == "0"
        assert rows["blind to both biases"] == "133"


class TestRenderTable:
    def test_alignment_and_rule(self):
        out = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only"]])

    def test_title_included(self):
        assert render_table(["h"], [["x"]], title="T1").startswith("T1")


class TestRenderSeries:
    def test_reference_marker_present(self):
        out = render_series([1, 2], [0.9, 1.1], reference=1.0)
        assert "|" in out
        assert "0.9000" in out and "1.1000" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_series([1], [1.0, 2.0])

    def test_scale_line(self):
        out = render_series([1], [5.0], title="t", reference=None)
        assert "scale:" in out


class TestRenderViolin:
    def test_contains_quartiles(self):
        vs = kernel_density([1.0, 2.0, 3.0, 4.0, 5.0])
        out = render_violin(vs, title="v")
        assert "median=" in out and out.startswith("v")

    def test_degenerate(self):
        vs = kernel_density([2.0, 2.0])
        assert "all values" in render_violin(vs)


class TestRenderInterval:
    def test_interval_markers(self):
        out = render_interval_row(
            "x", lo=0.9, mean=1.0, hi=1.1, scale=(0.8, 1.2), reference=1.0
        )
        assert "(" in out and ")" in out and "*" in out
