"""Unit tests: observable consequences of codegen policies.

Rather than inspecting internals, these verify the *counters* that each
policy exists to change: register promotion removes hot-loop memory
traffic, global-base caching removes address rematerialization, icc's
alignment pads loop heads.
"""

from repro.arch import execute, get_machine
from repro.isa import Op
from repro.os import Environment, load_process
from repro.toolchain import compile_unit, link
from repro.toolchain.opt.align import align_hot_loops, is_loop_head_label


def _counters(source, opt_level, profile="gcc"):
    exe = link([compile_unit(source, "m", opt_level=opt_level, profile=profile)])
    img = load_process(exe, Environment.typical())
    return execute(img, get_machine("core2").build()).counters


HOT_SCALAR = """
func main() {
    var i; var s;
    s = 0;
    for (i = 0; i < 500; i = i + 1) {
        s = s + i;
    }
    return s;
}
"""


class TestRegisterPromotion:
    def test_promotion_removes_loop_memory_traffic(self):
        c0 = _counters(HOT_SCALAR, 0)
        c1 = _counters(HOT_SCALAR, 1)
        # At O0 every iteration loads/stores i and s; at O1 both live in
        # callee-saved registers for the whole loop.
        assert c0.loads > 1500
        assert c1.loads < 50
        assert c1.stores < 50

    def test_promotion_preserves_result(self):
        exe0 = link([compile_unit(HOT_SCALAR, "m", opt_level=0)])
        exe1 = link([compile_unit(HOT_SCALAR, "m", opt_level=1)])
        for exe in (exe0, exe1):
            img = load_process(exe, Environment.typical())
            res = execute(img, get_machine("core2").build())
            assert res.exit_value == sum(range(500))


GLOBAL_WALK = """
int tbl[256];
func main() {
    var i; var s;
    s = 0;
    for (i = 0; i < 256; i = i + 1) {
        s = s + tbl[i];
        tbl[i] = s & 255;
    }
    return s;
}
"""


class TestGlobalBaseCaching:
    def test_o2_shrinks_instruction_stream(self):
        # The O1 loop rematerializes &tbl every iteration; O2 caches it
        # in a callee-saved register.
        c1 = _counters(GLOBAL_WALK, 1)
        c2 = _counters(GLOBAL_WALK, 2)
        assert c2.instructions < c1.instructions


BYTE_KERNEL = """
byte data[512];
func main() {
    var i; var s;
    for (i = 0; i < 512; i = i + 1) {
        data[i] = (i * 7) & 255;
    }
    s = 0;
    for (i = 0; i < 512; i = i + 1) {
        s = s + data[i];
    }
    return s;
}
"""


class TestByteOperations:
    def test_byte_semantics_across_levels(self):
        expected = sum((i * 7) & 255 for i in range(512))
        for level in (0, 2, 3):
            exe = link([compile_unit(BYTE_KERNEL, "m", opt_level=level)])
            img = load_process(exe, Environment.typical())
            assert (
                execute(img, get_machine("core2").build()).exit_value
                == expected
            )

    def test_byte_accesses_never_unaligned(self):
        # Byte accesses have no alignment penalty by definition; with a
        # 16-aligned stack nothing in this program can misalign.
        exe = link([compile_unit(BYTE_KERNEL, "m", opt_level=2)])
        img = load_process(exe, Environment.typical(), stack_align=16)
        c = execute(img, get_machine("core2").build()).counters
        assert c.unaligned_accesses == 0


class TestIccLoopAlignment:
    def test_align_pass_marks_only_loop_heads(self):
        module = compile_unit(HOT_SCALAR, "m", opt_level=2, profile="gcc")
        func = module.functions["main"]
        count = align_hot_loops(func, 16)
        assert count >= 1
        for blk in func.blocks:
            if is_loop_head_label(blk.label):
                assert blk.align == 16
            else:
                assert blk.align == 1

    def test_alignment_one_is_noop(self):
        module = compile_unit(HOT_SCALAR, "m", opt_level=2, profile="gcc")
        func = module.functions["main"]
        assert align_hot_loops(func, 1) == 0

    def test_icc_loop_heads_hit_aligned_addresses(self):
        exe = link([compile_unit(HOT_SCALAR, "m", opt_level=2, profile="icc")])
        backward_targets = {
            exe.targets[i]
            for i, op in enumerate(exe.ops)
            if op in (int(Op.BEQZ), int(Op.BNEZ), int(Op.JMP))
            and 0 <= exe.targets[i] <= i
        }
        assert backward_targets
        for tgt in backward_targets:
            assert exe.addrs[tgt] % 16 == 0
