"""Unit tests: the resilient sweep service.

Covers the service acceptance criteria end to end: study specs are
content-addressed values whose construction matches ``repro study``
exactly; the study-queue WAL replays, survives torn tails, and compacts
verifiably; ``repro fsck`` audits and repairs it; the lease pool grants,
expires, steals, and dedups at-least-once dispatch into exactly-once
accounting; the HTTP admission path rejects with typed errors and
survives injected client disconnects; dial-in agent reconnects follow
the pinned seeded-backoff schedule; and a full in-process service run
under chaos (one agent crash, injected lease expiries) publishes a
report byte-identical to the fault-free serial sweep — twice, the
second client's study fully store-served.
"""

import dataclasses
import json
import os
import queue
import threading
import time

import pytest

from repro import faults, workloads
from repro._errors import ArchiveCorruption
from repro.core import Experiment, ExperimentalSetup
from repro.core import distributed as dist
from repro.core import service as svc
from repro.core import servicewal
from repro.core import supervisor
from repro.core.bias import sample_link_orders
from repro.core.runner import RunnerConfig, SweepRunner, seeded_backoff
from repro.core.servicewal import ServiceWAL, compact_wal
from repro.core.supervisor import Task
from repro.fsck import DAMAGE, HYGIENE, classify, fsck_paths, fsck_wal
from repro.obs import metrics as obs_metrics

WORKLOAD = "sphinx3"

#: The end-to-end study: 4 env points x 2 opt levels = 8 setups.
SPEC = svc.StudySpec(
    workload=WORKLOAD, env_start=100, env_stop=228, env_step=32
)

#: Service chaos validated (in the e2e test) to fire exactly one
#: agent-side crash and at least one forced lease expiry against SPEC.
SERVICE_PLAN = faults.FaultPlan(
    seed=3,
    agent_crash_rate=0.12,
    lease_expire_rate=0.4,
    transient_fraction=1.0,
    max_transient_attempts=1,
)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


def make_task(index, attempt=1):
    """A real runner-shaped task (the pool serializes payloads)."""
    payload = (
        index, WORKLOAD, "test", 0,
        ExperimentalSetup(env_bytes=100 + index), True, attempt,
        None, None, 0.0,
    )
    return Task(index=index, key=f"key-{index}", attempt=attempt,
                payload=payload)


def result_message(task, attempt=None):
    return {
        "outcome": ["measured", task.index,
                    task.attempt if attempt is None else attempt,
                    {"cycles": 1}],
        "records": None,
    }


class TestSeededBackoffSchedule:
    """Satellite: dial-in reconnects follow a pinned, seeded schedule."""

    def test_first_attempt_and_zero_base_wait_nothing(self):
        assert seeded_backoff(0.05, 7, "reconnect:h:1", 1) == 0.0
        assert seeded_backoff(0.0, 7, "reconnect:h:1", 5) == 0.0
        assert seeded_backoff(-1.0, 7, "reconnect:h:1", 5) == 0.0

    def test_pinned_draw_sequence(self):
        """The exact delays an agent with this seed/key sleeps, forever:
        the schedule is a pure function of (base, seed, key, attempt)."""
        delays = [
            seeded_backoff(0.05, 7, "reconnect:h:1", a, cap=2.0)
            for a in range(2, 6)
        ]
        assert delays == pytest.approx(
            [0.0415209057, 0.1236097503, 0.1049147079, 0.4903888928],
            abs=1e-9,
        )

    def test_schedule_is_deterministic(self):
        for attempt in range(1, 8):
            assert seeded_backoff(0.5, 1, "rendezvous:host:9000", attempt) \
                == seeded_backoff(0.5, 1, "rendezvous:host:9000", attempt)

    def test_cap_bounds_the_delay(self):
        assert seeded_backoff(1.0, 7, "k", 20, cap=2.0) == 2.0

    def test_seed_and_key_desynchronize_a_fleet(self):
        """Different agents (seeds) and different coordinators (keys)
        must not stampede on the same schedule."""
        base = [seeded_backoff(0.5, 1, "rendezvous:a:1", a)
                for a in range(2, 6)]
        other_seed = [seeded_backoff(0.5, 2, "rendezvous:a:1", a)
                      for a in range(2, 6)]
        other_key = [seeded_backoff(0.5, 1, "rendezvous:b:1", a)
                     for a in range(2, 6)]
        assert base != other_seed
        assert base != other_key


class TestStudySpec:
    def test_study_id_is_content_addressed(self):
        assert SPEC.study_id() == svc.StudySpec(
            workload=WORKLOAD, env_start=100, env_stop=228, env_step=32
        ).study_id()
        assert SPEC.study_id() != dataclasses.replace(
            SPEC, tag="two").study_id()
        assert SPEC.study_id() != dataclasses.replace(
            SPEC, env_stop=260).study_id()

    def test_from_dict_roundtrip(self):
        assert svc.StudySpec.from_dict(SPEC.to_dict()) == SPEC

    def test_from_dict_applies_defaults(self):
        spec = svc.StudySpec.from_dict({"workload": WORKLOAD})
        assert spec == svc.StudySpec(workload=WORKLOAD)

    @pytest.mark.parametrize("bad", [
        "not a dict",
        {},
        {"workload": "doom"},
        {"workload": WORKLOAD, "frobnicate": 1},
        {"workload": WORKLOAD, "parameter": "phase"},
        {"workload": WORKLOAD, "base_opt": 9},
        {"workload": WORKLOAD, "machine": "cray1"},
        {"workload": WORKLOAD, "compiler": "tcc"},
        {"workload": WORKLOAD, "size": "huge"},
        {"workload": WORKLOAD, "env_start": "a"},
        {"workload": WORKLOAD, "env_step": 0},
        {"workload": WORKLOAD, "env_start": 200, "env_stop": 100},
        {"workload": WORKLOAD, "parameter": "link", "orders": 0},
        {"workload": WORKLOAD, "tag": 3},
    ])
    def test_from_dict_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            svc.StudySpec.from_dict(bad)

    def test_build_matches_the_cli_construction(self):
        """Byte identity starts here: the spec must materialise the
        exact setup list ``repro study`` builds."""
        exp, setups, base, treatment, points = SPEC.build()
        assert exp.size == "test" and exp.seed == 0
        assert points == [100, 132, 164, 196]
        expected_base = ExperimentalSetup(
            machine="core2", compiler="gcc", opt_level=2)
        expected_treatment = ExperimentalSetup(
            machine="core2", compiler="gcc", opt_level=3)
        assert (base, treatment) == (expected_base, expected_treatment)
        assert setups == [
            s.with_changes(env_bytes=env)
            for env in points
            for s in (expected_base, expected_treatment)
        ]

    def test_build_link_parameter(self):
        spec = dataclasses.replace(SPEC, parameter="link", orders=3)
        exp, setups, _base, _treatment, points = spec.build()
        assert points == sample_link_orders(
            exp.workload.module_names(), 3, seed=0
        )
        assert len(setups) == 2 * len(points)
        assert all(s.link_order == tuple(points[i // 2])
                   for i, s in enumerate(setups))


class TestServiceWAL:
    def wal_path(self, tmp_path):
        return str(tmp_path / "queue.wal")

    def write_lifecycle(self, path):
        wal = ServiceWAL(path)
        wal.load()
        wal.open_for_append(note="test")
        wal.append("submit", {"study": "s1", "spec": SPEC.to_dict()})
        wal.append("lease", {"study": "s1", "index": 0, "attempt": 1,
                             "agent": "a:1"})
        wal.append("requeue", {"study": "s1", "index": 0, "attempt": 1,
                               "reason": "agent_lost"})
        wal.append("lease", {"study": "s1", "index": 0, "attempt": 1,
                             "agent": "a:2"})
        wal.append("complete", {"study": "s1", "index": 0})
        wal.append("complete", {"study": "s1", "index": 1})
        wal.append("done", {"study": "s1", "report_sha256": "beef"})
        wal.close()

    def test_missing_file_is_an_empty_queue(self, tmp_path):
        state = ServiceWAL(self.wal_path(tmp_path)).load()
        assert state.studies == {} and state.torn_dropped == 0

    def test_roundtrip_replay(self, tmp_path):
        path = self.wal_path(tmp_path)
        self.write_lifecycle(path)
        state = ServiceWAL(path).load()
        assert state.counts == {"submit": 1, "lease": 2, "requeue": 1,
                                "complete": 2, "done": 1}
        rec = state.studies["s1"]
        assert rec.done and rec.report_sha256 == "beef"
        assert rec.completed == {0, 1}
        assert rec.leases == 2 and rec.requeues == 1
        assert state.pending() == []

    def test_pending_preserves_submission_order(self, tmp_path):
        path = self.wal_path(tmp_path)
        wal = ServiceWAL(path)
        wal.load()
        wal.open_for_append()
        for sid in ("a", "b", "c"):
            wal.append("submit", {"study": sid, "spec": SPEC.to_dict()})
        wal.append("done", {"study": "b", "report_sha256": ""})
        wal.close()
        state = ServiceWAL(path).load()
        assert [r.study for r in state.pending()] == ["a", "c"]

    def test_unknown_kind_rejected(self, tmp_path):
        wal = ServiceWAL(self.wal_path(tmp_path))
        wal.load()
        wal.open_for_append()
        with pytest.raises(ValueError, match="kind"):
            wal.append("frobnicate", {"study": "s"})
        wal.close()

    def test_torn_tail_dropped_and_compacted_in_place(self, tmp_path):
        path = self.wal_path(tmp_path)
        self.write_lifecycle(path)
        with open(path, "a") as fh:
            fh.write('{"kind": "lease", "data": {"study national')
        state = ServiceWAL(path).load()
        assert state.torn_dropped == 1
        assert state.counts["done"] == 1  # the prefix survived intact
        # The load rewrote the file: the tear is gone, the header
        # remembers it, and a second load sees a clean log.
        again = ServiceWAL(path)
        state2 = again.load()
        assert state2.torn_dropped == 0
        assert again.recovered_torn == 1

    def test_foreign_header_refused(self, tmp_path):
        path = self.wal_path(tmp_path)
        with open(path, "w") as fh:
            fh.write(json.dumps({"format": "somebody-elses-log"}) + "\n")
        with pytest.raises(ArchiveCorruption, match="refusing"):
            ServiceWAL(path).load()

    def test_compaction_drops_stale_and_preserves_replay(self, tmp_path):
        path = self.wal_path(tmp_path)
        wal = ServiceWAL(path)
        wal.load()
        wal.open_for_append()
        wal.append("submit", {"study": "s1", "spec": SPEC.to_dict()})
        for i in range(3):
            wal.append("lease", {"study": "s1", "index": i, "attempt": 1,
                                 "agent": "a:1"})
        wal.append("requeue", {"study": "s1", "index": 2, "attempt": 1,
                               "reason": "lease_expire"})
        for i in range(3):
            wal.append("complete", {"study": "s1", "index": i})
        wal.append("done", {"study": "s1", "report_sha256": "d1"})
        wal.append("submit", {"study": "s2", "spec": SPEC.to_dict()})
        wal.append("lease", {"study": "s2", "index": 0, "attempt": 1,
                             "agent": "a:1"})
        wal.append("complete", {"study": "s2", "index": 0})
        wal.close()

        stats = compact_wal(path)
        assert stats.stale_leases_dropped == 5  # 4 leases + 1 requeue
        # s1: submit + done; s2: submit + its one completion.
        assert stats.records_after == 4
        assert stats.bytes_after < stats.bytes_before
        assert "compacted" in stats.summary_line()

        state = ServiceWAL(path).load()
        assert state.studies["s1"].done
        assert not state.studies["s2"].done
        assert state.studies["s2"].completed == {0}
        assert state.counts["lease"] == 0 and state.counts["requeue"] == 0


class TestWalFsck:
    """Satellite: ``repro fsck`` audits and repairs the queue WAL."""

    def make_wal(self, tmp_path, torn=False):
        path = str(tmp_path / "queue.wal")
        wal = ServiceWAL(path)
        wal.load()
        wal.open_for_append()
        wal.append("submit", {"study": "s1", "spec": SPEC.to_dict()})
        wal.append("lease", {"study": "s1", "index": 0, "attempt": 1,
                             "agent": "a:1"})
        wal.append("complete", {"study": "s1", "index": 0})
        wal.close()
        if torn:
            with open(path, "a") as fh:
                fh.write('{"kind": "complete", "data": {"study"')
        return path

    def test_classifier_recognizes_service_wals(self, tmp_path):
        path = self.make_wal(tmp_path)
        assert classify(path) == "service-wal"

    def test_stale_leases_are_hygiene(self, tmp_path):
        findings = fsck_wal(self.make_wal(tmp_path), repair=False)
        assert [f.severity for f in findings] == [HYGIENE]
        assert "lease" in findings[0].problem

    def test_torn_lines_are_damage(self, tmp_path):
        findings = fsck_wal(self.make_wal(tmp_path, torn=True),
                            repair=False)
        severities = {f.severity for f in findings}
        assert DAMAGE in severities
        assert any("torn" in f.problem for f in findings
                   if f.severity == DAMAGE)

    def test_repair_compacts_and_leaves_a_clean_log(self, tmp_path):
        path = self.make_wal(tmp_path, torn=True)
        report = fsck_paths([path], repair=True)
        assert all(f.repaired for f in report.findings
                   if f.severity == DAMAGE)
        # The repaired WAL replays and audits clean.
        state = ServiceWAL(path).load()
        assert state.torn_dropped == 0
        assert state.studies["s1"].completed == {0}
        assert fsck_wal(path, repair=False) == [] or all(
            f.severity == HYGIENE and "compacted" in f.problem
            for f in fsck_wal(path, repair=False)
        )

    def test_damaged_header_is_unrepairable(self, tmp_path):
        path = str(tmp_path / "queue.wal")
        wal_head = json.dumps({"format": servicewal.WAL_FORMAT})
        with open(path, "w") as fh:
            fh.write(wal_head[: len(wal_head) // 2] + "\n")
        # Classifier still sees the marker fragment or not; audit the
        # path explicitly either way.
        findings = fsck_wal(path, repair=True)
        assert len(findings) == 1
        assert findings[0].severity == DAMAGE
        assert not findings[0].repairable and not findings[0].repaired


class FakeRegistry:
    """Duck-typed :class:`repro.core.service.AgentRegistry` — the lease
    pool only touches ``live_links``/``send``/``kill``/``inbox``."""

    def __init__(self, links=()):
        self.links = list(links)
        self.inbox = queue.Queue()
        self.sent = []
        self.killed = []
        self.failing = set()

    def live_links(self):
        return [link for link in self.links if not link.lost]

    def send(self, link, kind, data, corrupt=False):
        if link.lost or id(link) in self.failing:
            return False
        self.sent.append((link, kind, data, corrupt))
        return True

    def kill(self, link):
        self.killed.append(link)
        self.lose(link)

    def lose(self, link):
        if not link.lost:
            link.lost = True
            if link in self.links:
                self.links.remove(link)
            self.inbox.put(("lost", link))

    def join(self, link):
        self.links.append(link)
        self.inbox.put(("joined", link))


def make_link(slot, jobs=2):
    return svc.ServiceLink(slot, f"127.0.0.1:{9000 + slot}",
                           {"jobs": jobs}, writer=None)


def make_pool(registry, **kwargs):
    kwargs.setdefault("lease_timeout", 30.0)
    kwargs.setdefault("heartbeat_interval", 1.0)
    kwargs.setdefault("poll_interval", 0.01)
    kwargs.setdefault("agentless_grace", 30.0)
    return svc.LeasePool(registry, **kwargs)


def poll_until(pool, kind, timeout=5.0):
    """Poll the pool until an event of ``kind`` arrives (fail loudly)."""
    deadline = time.monotonic() + timeout
    seen = []
    while time.monotonic() < deadline:
        event = pool.poll(timeout=0.1)
        if event is None:
            continue
        if event.kind == kind:
            return event, seen
        seen.append(event)
    raise AssertionError(f"no {kind!r} event within {timeout}s "
                         f"(saw {[e.kind for e in seen]})")


class TestLeasePool:
    def test_grant_then_result(self):
        link = make_link(1)
        registry = FakeRegistry([link])
        leases = []
        pool = make_pool(registry,
                         on_lease=lambda *a: leases.append(a))
        t0, t1 = make_task(0), make_task(1)
        pool.submit(t0)
        pool.submit(t1)
        assert pool.poll(timeout=0.05) is None  # dispatched, no events
        assert leases == [(0, 1, link.label), (1, 1, link.label)]
        assert [kind for _, kind, _, _ in registry.sent] == ["task", "task"]
        assert link.in_flight == {0: t0, 1: t1}

        registry.inbox.put(("result", link, result_message(t0)))
        event, _ = poll_until(pool, "result")
        assert event.task is t0 and event.result[1] == 0
        assert event.worker == link.slot and event.label == link.label
        registry.inbox.put(("result", link, result_message(t1)))
        event, _ = poll_until(pool, "result")
        assert event.task is t1
        assert pool.poll() is None  # drained
        assert link.in_flight == {}

    def test_task_frames_carry_the_runner_payload(self):
        link = make_link(1)
        registry = FakeRegistry([link])
        pool = make_pool(registry)
        task = make_task(3)
        pool.submit(task)
        pool.poll(timeout=0.05)
        _, kind, data, corrupt = registry.sent[0]
        assert kind == "task" and not corrupt
        assert data["key"] == task.key and data["dispatch"] == 1
        assert dist.wire_to_payload(data["payload"]) == task.payload

    def test_lease_timeout_requeues_at_same_attempt(self):
        link = make_link(1)
        registry = FakeRegistry([link])
        requeues = []
        before = obs_metrics.counter("service.leases_expired").value
        pool = make_pool(registry, lease_timeout=0.05,
                         on_requeue=lambda *a: requeues.append(a))
        task = make_task(0, attempt=1)
        pool.submit(task)
        event, _ = poll_until(pool, "hang")
        assert event.tasks == [task]
        assert requeues and requeues[0] == (0, 1, "lease_timeout")
        assert all(attempt == 1 for _, attempt, _ in requeues)
        assert obs_metrics.counter("service.leases_expired").value > before
        # The requeued task re-leases (same attempt) and its eventual
        # result is accepted normally.  (Stop the expiry churn first so
        # the injected result cannot land in a between-leases gap.)
        pool.lease_timeout = 30.0
        for _ in range(50):  # absorb churned expiries until re-leased
            if 0 in pool._leases:
                break
            pool.poll(timeout=0.02)
        assert pool._leases[0].task is task  # re-leased, same attempt
        registry.inbox.put(("result", link, result_message(task)))
        event, _ = poll_until(pool, "result")
        assert event.task.attempt == 1
        assert pool.poll() is None

    def test_duplicate_result_is_dropped_after_acceptance(self):
        link = make_link(1)
        registry = FakeRegistry([link])
        pool = make_pool(registry)
        task = make_task(0)
        pool.submit(task)
        pool.poll(timeout=0.05)
        before = obs_metrics.counter("service.duplicate_results").value
        pool._accept_result(link, result_message(task))
        assert pool.poll(timeout=0.01).kind == "result"
        pool._accept_result(link, result_message(task))
        assert obs_metrics.counter(
            "service.duplicate_results").value == before + 1
        assert not pool._events  # the duplicate produced nothing

    def test_attempt_mismatch_never_pops_the_live_lease(self):
        """A stale attempt-1 result must not destroy the attempt-2
        lease it no longer matches."""
        link = make_link(1)
        registry = FakeRegistry([link])
        pool = make_pool(registry)
        task = make_task(0, attempt=2)
        pool.submit(task)
        pool.poll(timeout=0.05)
        before = obs_metrics.counter("service.duplicate_results").value
        pool._accept_result(link, result_message(task, attempt=1))
        assert obs_metrics.counter(
            "service.duplicate_results").value == before + 1
        assert 0 in pool._leases  # still leased, still attempt 2
        pool._accept_result(link, result_message(task))
        event = pool.poll(timeout=0.01)
        assert event.kind == "result" and event.result[2] == 2

    def test_forced_expiry_from_the_fault_plan(self):
        plan = faults.FaultPlan(seed=5, lease_expire_rate=1.0,
                                transient_fraction=1.0,
                                max_transient_attempts=1)
        link = make_link(1)
        registry = FakeRegistry([link])
        requeues = []
        pool = make_pool(registry, fault_plan=plan,
                         on_requeue=lambda *a: requeues.append(a))
        task = make_task(0)
        pool.submit(task)
        event, _ = poll_until(pool, "hang")
        assert event.tasks == [task]
        assert requeues == [(0, 1, "lease_expire")]
        # The transient cleared at dispatch 2: the re-lease holds, and
        # the result lands.
        for _ in range(50):
            if 0 in pool._leases:
                break
            pool.poll(timeout=0.02)
        assert 0 in pool._leases and not pool._leases[0].forced
        registry.inbox.put(("result", link, result_message(task)))
        event, _ = poll_until(pool, "result")
        assert event.task.attempt == 1
        assert pool.poll() is None

    def test_lost_agent_requeues_solely_held_leases(self):
        link = make_link(1)
        registry = FakeRegistry([link])
        requeues = []
        pool = make_pool(registry,
                         on_requeue=lambda *a: requeues.append(a))
        t0, t1 = make_task(0), make_task(1)
        pool.submit(t0)
        pool.submit(t1)
        pool.poll(timeout=0.05)
        registry.lose(link)
        event, _ = poll_until(pool, "crash")
        assert event.tasks == [t0, t1] and event.label == link.label
        assert requeues == [(0, 1, "agent_lost"), (1, 1, "agent_lost")]
        # A replacement joins; both tasks re-lease at the same attempt.
        fresh = make_link(2)
        registry.join(fresh)
        for _ in range(50):
            if len(fresh.in_flight) == 2:
                break
            pool.poll(timeout=0.02)
        assert set(fresh.in_flight) == {0, 1}
        registry.inbox.put(("result", fresh, result_message(t0)))
        registry.inbox.put(("result", fresh, result_message(t1)))
        poll_until(pool, "result")
        poll_until(pool, "result")
        assert pool.poll() is None

    def test_idle_agent_steals_from_an_overloaded_one(self):
        busy = make_link(1, jobs=2)
        registry = FakeRegistry([busy])
        pool = make_pool(registry)
        t0, t1 = make_task(0), make_task(1)
        pool.submit(t0)
        pool.submit(t1)
        pool.poll(timeout=0.05)
        assert len(busy.in_flight) == 2
        before = obs_metrics.counter("service.steals").value
        thief = make_link(2, jobs=2)
        registry.join(thief)
        pool.poll(timeout=0.05)
        assert obs_metrics.counter("service.steals").value == before + 1
        assert len(thief.in_flight) == 1
        stolen_index = next(iter(thief.in_flight))
        lease = pool._leases[stolen_index]
        assert {l.slot for l in lease.links} == {busy.slot, thief.slot}
        # First result wins; the loser's copy is a counted duplicate.
        stolen = busy.in_flight[stolen_index]
        registry.inbox.put(("result", thief, result_message(stolen)))
        event, _ = poll_until(pool, "result")
        assert event.worker == thief.slot
        assert stolen_index not in busy.in_flight  # popped from both
        dup_before = obs_metrics.counter("service.duplicate_results").value
        pool._accept_result(busy, result_message(stolen))
        assert obs_metrics.counter(
            "service.duplicate_results").value == dup_before + 1
        other = next(iter(busy.in_flight.values()))
        registry.inbox.put(("result", busy, result_message(other)))
        poll_until(pool, "result")
        assert pool.poll() is None

    def test_agentless_pool_degrades_honestly(self):
        registry = FakeRegistry([])
        before = obs_metrics.counter("service.degraded_studies").value
        pool = make_pool(registry, agentless_grace=0.05)
        t0, t1 = make_task(0), make_task(1)
        pool.submit(t0)
        pool.submit(t1)
        event, _ = poll_until(pool, "degraded")
        assert event.tasks == [t0, t1]
        assert obs_metrics.counter(
            "service.degraded_studies").value == before + 1

    def test_effective_lease_timeout(self):
        registry = FakeRegistry([])
        pinned = make_pool(registry, lease_timeout=7.5)
        assert pinned.effective_lease_timeout() == 7.5
        adaptive = make_pool(registry, lease_timeout=None,
                             heartbeat_interval=0.2)
        # No observations yet: the supervisor's default hang budget.
        assert adaptive.effective_lease_timeout() == max(
            supervisor.DEFAULT_HANG_TIMEOUT, 1.0
        )

    def test_stats_counts_leases(self):
        link = make_link(1)
        registry = FakeRegistry([link])
        pool = make_pool(registry)
        pool.submit(make_task(0))
        pool.poll(timeout=0.05)
        stats = pool.stats()
        assert stats["workers_alive"] == 1
        assert stats["workers_busy"] == 1
        assert stats["leases"] == 1 and stats["queue_depth"] == 0


class TestAdmissionControl:
    """The HTTP routing layer, exercised without sockets."""

    @pytest.fixture
    def coordinator(self, tmp_path):
        coord = svc.ServiceCoordinator(
            workdir=str(tmp_path), max_queue=1, quiet=True
        )
        wal = ServiceWAL(os.path.join(str(tmp_path), "queue.wal"))
        wal.load()
        wal.open_for_append()
        coord._wal = wal
        yield coord
        wal.close()

    def submit(self, coordinator, spec):
        return coordinator._api_submit(json.dumps(spec.to_dict()).encode())

    def test_bad_spec_is_a_typed_400(self, coordinator):
        status, doc = coordinator._api_submit(b'{"workload": "doom"}')
        assert status == 400 and doc["error"] == "bad_spec"
        status, _doc = coordinator._api_submit(b"not json at all")
        assert status == 400

    def test_submit_queues_durably(self, coordinator):
        status, doc = self.submit(coordinator, SPEC)
        assert status == 202 and doc["state"] == "queued"
        assert doc["study"] == SPEC.study_id()
        assert coordinator._runq.get_nowait() == SPEC.study_id()
        coordinator._wal.close()
        state = ServiceWAL(coordinator._wal.path).load()
        assert state.counts["submit"] == 1
        assert state.studies[SPEC.study_id()].spec == SPEC.to_dict()

    def test_identical_submissions_dedup(self, coordinator):
        self.submit(coordinator, SPEC)
        status, doc = self.submit(coordinator, SPEC)
        assert status == 202 and doc["study"] == SPEC.study_id()
        assert coordinator._runq.qsize() == 1  # one queue entry
        assert coordinator._studies[SPEC.study_id()].submits == 2

    def test_bounded_queue_rejects_with_queue_full(self, coordinator):
        before = obs_metrics.counter("service.queue_full").value
        self.submit(coordinator, SPEC)
        status, doc = self.submit(
            coordinator, dataclasses.replace(SPEC, tag="two"))
        assert status == 429
        assert doc == {"error": "queue_full", "limit": 1}
        assert obs_metrics.counter(
            "service.queue_full").value == before + 1

    def test_draining_refuses_new_studies(self, coordinator):
        coordinator._begin_drain()
        status, doc = self.submit(coordinator, SPEC)
        assert status == 503 and doc["error"] == "draining"

    def test_client_disconnect_drops_only_the_response(self, coordinator):
        plan = faults.FaultPlan(seed=3, client_disconnect_rate=1.0,
                                transient_fraction=1.0,
                                max_transient_attempts=1)
        faults.install(plan)
        before = obs_metrics.counter("service.client_disconnects").value
        assert self.submit(coordinator, SPEC) is None  # hung up on
        assert obs_metrics.counter(
            "service.client_disconnects").value == before + 1
        # The study is already durable; the client's retry dedups and
        # gets a real response (the transient cleared at attempt 2).
        status, doc = self.submit(coordinator, SPEC)
        assert status == 202 and doc["study"] == SPEC.study_id()
        assert coordinator._runq.qsize() == 1
        coordinator._wal.close()
        state = ServiceWAL(coordinator._wal.path).load()
        assert state.counts["submit"] == 1

    def test_routes(self, coordinator):
        status, doc = coordinator._route("GET", "/v1/studies/nope", b"")
        assert status == 404 and doc["error"] == "unknown_study"
        status, doc = coordinator._route("GET", "/v1/status", b"")
        assert status == 200
        assert doc["queue_limit"] == 1 and doc["draining"] is False
        status, doc = coordinator._route("PUT", "/v1/status", b"")
        assert status == 405
        status, doc = coordinator._route("GET", "/v1/nothing", b"")
        assert status == 404 and doc["error"] == "not_found"
        status, doc = coordinator._route("POST", "/v1/drain", b"")
        assert status == 200 and doc["draining"] is True

    def test_study_doc_reports_progress(self, coordinator):
        self.submit(coordinator, SPEC)
        st = coordinator._studies[SPEC.study_id()]
        st.requested = 8
        st.completed = {0, 1, 2}
        st.store_hits = 2
        status, doc = coordinator._route(
            "GET", f"/v1/studies/{SPEC.study_id()}", b"")
        assert status == 200
        assert doc["requested"] == 8 and doc["completed"] == 3
        assert doc["store_hits"] == 2
        assert "report" not in doc  # not finished yet


class TestServiceEndToEnd:
    """The acceptance soak, in-process: a real coordinator, two dial-in
    agents, service chaos (one agent crash, forced lease expiries), two
    clients — byte identity and exactly-once accounting throughout.
    (Coordinator SIGKILL mid-study is covered by ``tools/crashsim.py
    queue:N``, which needs real processes.)"""

    @pytest.mark.slow
    def test_chaos_study_is_byte_identical_and_second_client_is_free(
        self, tmp_path
    ):
        exp, setups, _base, _treatment, _points = SPEC.build()
        keys = [faults.fault_key(exp.workload.name, exp.size, exp.seed, s)
                for s in setups]
        crash_keys = sum(
            SERVICE_PLAN.fires("agent_crash", k, 1) for k in keys)
        expire_keys = sum(
            SERVICE_PLAN.fires("lease_expire", k, 1) for k in keys)
        assert crash_keys == 1, "plan must kill exactly one agent"
        assert expire_keys >= 1, "plan must force at least one expiry"

        # The fault-free serial reference (the byte-identity oracle).
        serial_exp, serial_setups, *_ = SPEC.build()
        serial = SweepRunner(
            serial_exp, RunnerConfig(jobs=1, max_retries=2),
            sleep=lambda s: None,
        ).run(serial_setups)
        serial_json = serial.report.to_json()

        expired_before = obs_metrics.counter("service.leases_expired").value
        coordinator = svc.ServiceCoordinator(
            workdir=str(tmp_path / "svc"),
            fault_plan=SERVICE_PLAN,
            heartbeat_interval=0.05,
            agentless_grace=10.0,
            quiet=True,
        )
        coordinator_thread = threading.Thread(
            target=coordinator.run, daemon=True
        )
        coordinator_thread.start()
        deadline = time.monotonic() + 10.0
        while coordinator.http_port is None or coordinator.agent_port is None:
            assert time.monotonic() < deadline, "service failed to start"
            time.sleep(0.02)

        agents = []
        agent_threads = []
        for seed in (1, 2):
            server = dist.AgentServer(jobs=2, quiet=True)
            thread = threading.Thread(
                target=server.serve_connect,
                args=("127.0.0.1", coordinator.agent_port),
                kwargs=dict(backoff_base=0.05, backoff_seed=seed,
                            connect_timeout=3.0),
                daemon=True,
            )
            thread.start()
            agents.append(server)
            agent_threads.append(thread)

        try:
            host, port = "127.0.0.1", coordinator.http_port
            doc = svc.submit_study(host, port, SPEC)
            assert doc["state"] in ("queued", "running")
            done = svc.wait_for_study(host, port, SPEC.study_id(),
                                      poll_interval=0.2, timeout=300.0)
            assert done["state"] == "done", done.get("error")
            assert done["report"] == serial_json
            assert done["completed"] == len(setups)

            # The chaos actually happened — and stayed invisible.  The
            # crash-key task is in the doomed agent's inbox, but the
            # agent drains it asynchronously (its worker pool may still
            # be spawning); with the engine fast path the study can
            # finish before the agent gets around to dying, so wait for
            # the death instead of asserting it already happened.
            deadline = time.monotonic() + 10.0
            while (sum(s.crashed for s in agents) != 1
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert sum(s.crashed for s in agents) == 1
            assert obs_metrics.counter(
                "service.leases_expired").value > expired_before

            # Second client, distinct study over the same setups: same
            # bytes, zero fresh measurements (fully store-served).
            spec_two = dataclasses.replace(SPEC, tag="client-two")
            svc.submit_study(host, port, spec_two)
            done_two = svc.wait_for_study(host, port, spec_two.study_id(),
                                          poll_interval=0.2, timeout=120.0)
            assert done_two["state"] == "done", done_two.get("error")
            assert done_two["report"] == serial_json
            assert done_two["store_hits"] == len(setups)

            status = svc.get_status(host, port)
            assert status["studies"].get("done") == 2
            assert status["degraded"] == []

            # Graceful drain: the service finishes and exits.
            svc._request(host, port, "POST", "/v1/drain")
            coordinator_thread.join(timeout=30.0)
            assert not coordinator_thread.is_alive()
        finally:
            for server in agents:
                server.stop()
            for thread in agent_threads:
                thread.join(timeout=5.0)
            faults.clear()

        # Exactly-once accounting, straight from the WAL: every setup
        # of both studies completed once, ever — no double counts, no
        # drops, through one agent crash and forced lease expiries.
        state = ServiceWAL(
            os.path.join(str(tmp_path / "svc"), "queue.wal")
        ).load()
        assert state.counts["submit"] == 2
        assert state.counts["done"] == 2
        assert state.counts["complete"] == 2 * len(setups)
        for record in state.studies.values():
            assert record.done
            assert record.completed == set(range(len(setups)))
        first, second = state.studies.values()
        assert first.leases >= len(setups)  # every setup was dispatched
        assert second.leases == 0  # store-served: nothing ever leased
