"""Unit tests: the structured error taxonomy and its classification."""

import pytest

from repro import workloads
from repro.core import Experiment, ExperimentalSetup
from repro.core.errors import (
    ArchiveCorruption,
    BuildError,
    ReproError,
    RunTimeout,
    SimulationError,
    VerificationError,
    classify,
    is_retryable,
)


class TestTaxonomy:
    def test_default_classification(self):
        assert not is_retryable(BuildError("bad source"))
        assert not is_retryable(SimulationError("trap"))
        assert not is_retryable(ArchiveCorruption("bad file"))
        assert is_retryable(VerificationError("wrong answer"))
        assert is_retryable(RunTimeout("deadline"))

    def test_instance_override(self):
        ice = BuildError("injected ICE", retryable=True)
        assert is_retryable(ice)
        corrupt = SimulationError("corrupted counters", retryable=True)
        assert is_retryable(corrupt)

    def test_classify_strings(self):
        assert classify(RunTimeout("x")) == "retryable"
        assert classify(BuildError("x")) == "fatal"

    def test_unclassified_exceptions_are_fatal(self):
        assert not is_retryable(KeyError("stray"))
        assert classify(RuntimeError("boom")) == "fatal"

    def test_all_are_repro_errors(self):
        for cls in (
            BuildError,
            SimulationError,
            VerificationError,
            RunTimeout,
            ArchiveCorruption,
        ):
            assert issubclass(cls, ReproError)

    def test_context_mapping(self):
        err = BuildError("x", context={"workload": "mcf"})
        assert err.context["workload"] == "mcf"

    def test_archive_corruption_carries_location(self):
        err = ArchiveCorruption("checksum mismatch", path="a.json", record=3)
        assert err.path == "a.json"
        assert err.record == 3
        assert "a.json" in str(err) and "record 3" in str(err)

    def test_archive_corruption_is_a_value_error(self):
        # Pre-taxonomy load_measurements raised ValueError; old callers
        # that catch it must keep working.
        assert issubclass(ArchiveCorruption, ValueError)


class TestSubstrateIntegration:
    def test_engine_cycle_budget_raises_run_timeout(self):
        exp = Experiment(workloads.get("sphinx3"))
        with pytest.raises(RunTimeout, match="cycle budget"):
            exp.run(ExperimentalSetup(), max_cycles=100.0)

    def test_generous_cycle_budget_is_harmless(self):
        exp = Experiment(workloads.get("sphinx3"))
        m = exp.run(ExperimentalSetup(), max_cycles=1e12)
        assert m.cycles > 0

    def test_bad_source_becomes_build_error(self):
        from repro.workloads.base import Workload

        wl = Workload(
            name="broken",
            description="intentionally malformed",
            sources={"main": "func main( { return 0; }"},
            make_input=lambda size, seed: {},
            reference=lambda bindings: 0,
        )
        exp = Experiment(wl)
        with pytest.raises(BuildError) as info:
            exp.build(ExperimentalSetup())
        assert not is_retryable(info.value)
