"""Unit tests: ExperimentalSetup and Experiment."""

import pytest

from repro import workloads
from repro.arch import core2
from repro.core import Experiment, ExperimentalSetup, VerificationError
from repro.os import Environment


class TestExperimentalSetup:
    def test_defaults(self):
        s = ExperimentalSetup()
        assert s.machine_name == "core2"
        assert s.opt_level == 2
        assert s.environment() == Environment.typical()

    def test_with_changes_creates_new(self):
        base = ExperimentalSetup()
        treat = base.with_changes(opt_level=3)
        assert base.opt_level == 2 and treat.opt_level == 3

    def test_env_bytes_resolution(self):
        s = ExperimentalSetup(env_bytes=512)
        assert s.environment().total_bytes == 512

    def test_invalid_opt_level_rejected(self):
        with pytest.raises(ValueError):
            ExperimentalSetup(opt_level=5)

    def test_link_order_normalized_to_tuple(self):
        s = ExperimentalSetup(link_order=["a", "b"])
        assert s.link_order == ("a", "b")
        assert hash(s)  # hashable for memoization

    def test_machine_config_from_name_and_instance(self):
        by_name = ExperimentalSetup(machine="core2").machine_config()
        direct = ExperimentalSetup(machine=core2()).machine_config()
        assert by_name == direct

    def test_build_key_excludes_runtime_fields(self):
        a = ExperimentalSetup(env_bytes=100)
        b = ExperimentalSetup(env_bytes=4000)
        assert a.build_key() == b.build_key()
        c = ExperimentalSetup(opt_level=3)
        assert a.build_key() != c.build_key()

    def test_describe_mentions_key_fields(self):
        s = ExperimentalSetup(opt_level=3, env_bytes=256)
        d = s.describe()
        assert "O3" in d and "256" in d and "core2" in d


class TestExperiment:
    @pytest.fixture(scope="class")
    def exp(self):
        # sphinx3 is the suite's fastest workload.
        return Experiment(workloads.get("sphinx3"), size="test", seed=0)

    def test_run_verifies_against_reference(self, exp, base_setup):
        m = exp.run(base_setup)
        assert m.exit_value == exp.expected

    def test_measurement_cached(self, exp, base_setup):
        a = exp.run(base_setup)
        b = exp.run(base_setup)
        assert a is b

    def test_build_cached_across_env_sizes(self, exp, base_setup):
        exe1 = exp.build(base_setup.with_changes(env_bytes=100))
        exe2 = exp.build(base_setup.with_changes(env_bytes=4000))
        assert exe1 is exe2

    def test_build_not_shared_across_opt_levels(self, exp, base_setup):
        exe1 = exp.build(base_setup)
        exe2 = exp.build(base_setup.with_changes(opt_level=3))
        assert exe1 is not exe2

    def test_speedup_definition(self, exp, base_setup):
        treat = base_setup.with_changes(opt_level=3)
        s = exp.speedup(base_setup, treat)
        assert s == pytest.approx(
            exp.run(base_setup).cycles / exp.run(treat).cycles
        )

    def test_sweep_returns_in_order(self, exp, base_setup):
        setups = [base_setup.with_changes(env_bytes=e) for e in (100, 132, 164)]
        ms = exp.sweep(setups)
        assert [m.setup.env_bytes for m in ms] == [100, 132, 164]

    def test_different_seeds_different_inputs(self):
        e0 = Experiment(workloads.get("sphinx3"), seed=0)
        e1 = Experiment(workloads.get("sphinx3"), seed=1)
        assert e0.expected != e1.expected

    def test_clear_caches(self, exp, base_setup):
        exp.run(base_setup)
        exp.clear_caches()
        assert exp.run(base_setup) is not None

    def test_verification_failure_raises(self, base_setup):
        wl = workloads.get("sphinx3")
        exp = Experiment(wl, size="test", seed=0)
        exp._expected = exp.expected + 1  # sabotage the oracle
        with pytest.raises(VerificationError):
            exp.run(base_setup.with_changes(env_bytes=3000))
