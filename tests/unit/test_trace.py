"""Unit tests: bounded execution tracing and its invariants."""

from repro.arch import execute, get_machine
from repro.os import Environment, load_process


def _trace(exe, env_bytes, limit=2000, machine="core2"):
    img = load_process(exe, Environment.of_size(env_bytes))
    return execute(
        img, get_machine(machine).build(), trace_limit=limit
    ).trace


class TestTracing:
    def test_disabled_by_default(self, small_exe_o2):
        img = load_process(small_exe_o2, Environment.typical())
        res = execute(img, get_machine("core2").build())
        assert res.trace == ()

    def test_limit_honoured(self, small_exe_o2):
        t = _trace(small_exe_o2, 100, limit=50)
        assert len(t) == 50

    def test_trace_starts_at_entry(self, small_exe_o2):
        t = _trace(small_exe_o2, 100, limit=5)
        assert t[0] == small_exe_o2.entry

    def test_architectural_path_is_environment_invariant(self, small_exe_o2):
        """The paper's bias is purely micro-architectural: the executed
        instruction sequence must be identical across environment sizes
        even though the cycles differ."""
        a = _trace(small_exe_o2, 100)
        b = _trace(small_exe_o2, 1357)
        assert a == b

    def test_path_is_machine_invariant(self, small_exe_o2):
        a = _trace(small_exe_o2, 100, machine="core2")
        b = _trace(small_exe_o2, 100, machine="pentium4")
        assert a == b

    def test_path_differs_across_opt_levels(self, small_exe_o0, small_exe_o2):
        a = _trace(small_exe_o0, 100)
        b = _trace(small_exe_o2, 100)
        assert a != b

    def test_trace_indices_valid(self, small_exe_o2):
        t = _trace(small_exe_o2, 100, limit=500)
        n = small_exe_o2.num_instructions()
        assert all(0 <= pc < n for pc in t)
