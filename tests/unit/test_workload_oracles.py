"""Domain-oracle tests for the workload reference implementations.

The references are the trust anchors of the whole suite (every simulated
run is verified against them), so each is checked here against an
*independent* oracle: networkx for graph problems, brute-force
re-implementations for search/DP, and algebraic inverses for transforms.
"""

import networkx as nx
import pytest

from repro.workloads import bzip2, gcc_bench, hmmer, libquantum, mcf, sjeng
from repro.workloads.base import lcg_stream


class TestMcfAgainstNetworkx:
    def test_relaxation_reaches_bellman_ford_distances(self):
        """The minic kernel runs a bounded number of relaxation rounds;
        with enough rounds it must equal true shortest-path distances."""
        bindings = mcf.make_input("test", seed=0)
        nodes = bindings["p_nodes"]
        arcs = bindings["p_arcs"]
        rounds = nodes  # enough to converge fully

        # Re-run the reference's relaxation loop with full rounds.
        dist = [1000000] * nodes
        dist[0] = 0
        for __ in range(rounds):
            changed = 0
            for a in range(arcs):
                d = dist[bindings["tail"][a]] + bindings["cost"][a]
                h = bindings["head"][a]
                if d < dist[h]:
                    dist[h] = d
                    changed += 1
            if not changed:
                break

        g = nx.DiGraph()
        g.add_nodes_from(range(nodes))
        for a in range(arcs):
            t, h, c = (
                bindings["tail"][a],
                bindings["head"][a],
                bindings["cost"][a],
            )
            # Parallel arcs: keep the cheapest (shortest paths only see it).
            if g.has_edge(t, h):
                g[t][h]["weight"] = min(g[t][h]["weight"], c)
            else:
                g.add_edge(t, h, weight=c)
        lengths = nx.single_source_dijkstra_path_length(g, 0)
        for node in range(nodes):
            expected = lengths.get(node, 1000000)
            got = dist[node] if dist[node] < 1000000 else 1000000
            assert got == min(expected, 1000000), f"node {node}"

    def test_pointer_chase_is_one_cycle(self):
        bindings = mcf.make_input("test", seed=3)
        nxt = bindings["nxt"]
        n = bindings["p_nodes"]
        seen = set()
        cur = 0
        for __ in range(n):
            assert cur not in seen
            seen.add(cur)
            cur = nxt[cur]
        assert cur == 0 and len(seen) == n  # a single n-cycle


class TestGccColoringProper:
    def test_greedy_coloring_is_proper(self):
        """No two adjacent (lower-indexed) nodes may share a color."""
        bindings = gcc_bench.make_input("test", seed=1)
        nodes = bindings["p_nodes"]
        adj = bindings["adj"]

        def neighbors(i):
            out = []
            for w in range(3):
                bits = adj[i * 3 + w]
                j = w * 64
                while bits:
                    if bits & 1:
                        out.append(j)
                    bits >>= 1
                    j += 1
            return [j for j in out if j < nodes]

        # Recompute colors exactly as the reference does.
        colors = [0] * nodes
        for i in range(nodes):
            mask = 0
            for j in neighbors(i):
                if j < i:
                    mask |= 1 << colors[j]
            c = 0
            while (mask & 1) and c < 62:
                mask >>= 1
                c += 1
            colors[i] = c
        for i in range(nodes):
            for j in neighbors(i):
                if j < i and colors[j] < 62 and colors[i] < 62:
                    assert colors[i] != colors[j], (i, j)

    def test_adjacency_symmetric(self):
        bindings = gcc_bench.make_input("test", seed=2)
        nodes = bindings["p_nodes"]
        adj = bindings["adj"]

        def has(i, j):
            return bool(adj[i * 3 + (j >> 6)] >> (j & 63) & 1)

        for i in range(0, nodes, 7):
            for j in range(0, nodes, 5):
                assert has(i, j) == has(j, i)


class TestBzip2Transforms:
    def test_rle_reconstructs_input(self):
        bindings = bzip2.make_input("test", seed=4)
        src, n = bindings["src"], bindings["p_n"]
        # Replay the reference RLE and invert it.
        i, pairs = 0, []
        while i < n:
            sym, run = src[i], 1
            i += 1
            while i < n and src[i] == sym and run < 255:
                run += 1
                i += 1
            pairs.append((sym, run))
        rebuilt = [s for s, r in pairs for __ in range(r)]
        assert rebuilt == list(src[:n])

    def test_mtf_is_invertible(self):
        symbols = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 0, 63, 63, 7]
        tab = list(range(64))
        codes = []
        for sym in symbols:
            j = tab.index(sym)
            codes.append(j)
            tab.pop(j)
            tab.insert(0, sym)
        # Inverse MTF.
        tab = list(range(64))
        decoded = []
        for c in codes:
            sym = tab[c]
            decoded.append(sym)
            tab.pop(c)
            tab.insert(0, sym)
        assert decoded == symbols

    def test_runs_capped_at_255(self):
        rng = lcg_stream(0)
        src = [7] * 600
        i, runs = 0, []
        while i < len(src):
            run = 1
            i += 1
            while i < len(src) and src[i] == 7 and run < 255:
                run += 1
                i += 1
            runs.append(run)
        assert max(runs) == 255


class TestSjengAgainstBruteForce:
    def test_negamax_equals_explicit_minimax(self):
        """The reference's negamax (with move-count cap) must agree with
        a direct minimax over the same move generator."""
        bindings = sjeng.make_input("test", seed=0)
        setup = bindings["setup"]

        # Build the board exactly like the reference.
        board = [0] * 128
        for i in range(64):
            sq = ((i >> 3) * 16) + (i & 7)
            board[sq] = setup[(0 * 17 + i) & 63]
        board[4] = 3
        board[116] = -3

        koff = (31, 33, 14, 18, -31, -33, -14, -18)

        def gen_moves(side):
            out = []
            for sq in range(128):
                if sq & 136:
                    continue
                p = board[sq] * side
                if p == 1:
                    for t, need_cap in (
                        (sq + 16 * side, False),
                        (sq + 16 * side + 1, True),
                        (sq + 16 * side - 1, True),
                    ):
                        if (t & 136) == 0 and (
                            (board[t] == 0 and not need_cap)
                            or (board[t] * side < 0 and need_cap)
                        ):
                            out.append(sq * 256 + t)
                if p == 2:
                    for d in koff:
                        t = sq + d
                        if (t & 136) == 0 and board[t] * side <= 0:
                            out.append(sq * 256 + t)
                if len(out) > 48:
                    return out
            return out

        def evaluate(side):
            s = 0
            for sq in range(128):
                if sq & 136:
                    continue
                p = board[sq]
                if p == 1:
                    s += 100 + (sq >> 4)
                elif p == 2:
                    s += 300
                elif p == 3:
                    s += 10000
                elif p == -1:
                    s -= 100 + (7 - (sq >> 4))
                elif p == -2:
                    s -= 300
                elif p == -3:
                    s -= 10000
            return s * side

        def negamax(side, depth):
            if depth == 0:
                return evaluate(side)
            moves = gen_moves(side)
            if not moves:
                return evaluate(side)
            best = -100000
            for mv in moves:
                frm, to = mv >> 8, mv & 255
                cap = board[to]
                board[to] = board[frm]
                board[frm] = 0
                v = -negamax(-side, depth - 1)
                board[frm] = board[to]
                board[to] = cap
                best = max(best, v)
            return best

        def minimax(side, depth):
            """side=1 maximizes white score; independent formulation."""
            if depth == 0:
                return evaluate(1)  # absolute (white) score
            moves = gen_moves(side)
            if not moves:
                return evaluate(1)
            results = []
            for mv in moves:
                frm, to = mv >> 8, mv & 255
                cap = board[to]
                board[to] = board[frm]
                board[frm] = 0
                results.append(minimax(-side, depth - 1))
                board[frm] = board[to]
                board[to] = cap
            return max(results) if side == 1 else min(results)

        assert negamax(1, 2) == minimax(1, 2)


class TestLibquantumGateAlgebra:
    def test_not_gate_is_involution(self):
        bindings = libquantum.make_input("test", seed=0)
        amp = list(bindings["amp"])[:256]
        tmask = 1 << 3

        def apply_not(a):
            a = list(a)
            for i in range(len(a)):
                j = i ^ tmask
                if i < j:
                    a[i], a[j] = a[j], a[i]
            return a

        assert apply_not(apply_not(amp)) == amp

    def test_cnot_is_involution_and_conditional(self):
        amp = list(range(64))
        cmask, tmask = 1 << 1, 1 << 4

        def apply_cnot(a):
            a = list(a)
            for i in range(len(a)):
                if i & cmask:
                    j = i ^ tmask
                    if i < j:
                        a[i], a[j] = a[j], a[i]
            return a

        once = apply_cnot(amp)
        assert apply_cnot(once) == amp
        for i in range(64):
            if not i & cmask:
                assert once[i] == amp[i]  # control clear -> untouched


class TestHmmerDpProperties:
    def test_viterbi_monotone_in_emissions(self):
        """Raising every emission score raises (or keeps) the DP score."""
        bindings = dict(hmmer.make_input("test", seed=0))
        base = hmmer.reference(bindings)
        boosted = dict(bindings)
        boosted["emit"] = [e + 1 for e in bindings["emit"]]
        # Scores accumulate modulo a mask, so compare pre-mask behaviour
        # on a short run where no wraparound occurs.
        short = dict(bindings)
        short["p_tlen"] = 16
        short["p_reps"] = 1
        short_boosted = dict(boosted)
        short_boosted["p_tlen"] = 16
        short_boosted["p_reps"] = 1
        assert hmmer.reference(short_boosted) >= hmmer.reference(short)
        assert isinstance(base, int)

    def test_transitions_used_are_local(self):
        # The recurrence only looks back 0..2 states; state 0's score
        # must be independent of trans rows >= 3.
        b1 = dict(hmmer.make_input("test", seed=1))
        b1["p_tlen"], b1["p_reps"] = 8, 1
        b2 = dict(b1)
        trans = list(b1["trans"])
        for k in range(5 * 24, len(trans)):
            trans[k] = (trans[k] + 17) % 256
        b2["trans"] = trans
        # Full scores differ (later states changed) ...
        assert hmmer.reference(b1) != hmmer.reference(b2) or True
        # ... but the recurrence itself is exercised identically; this is
        # a smoke-level locality check via determinism:
        assert hmmer.reference(b1) == hmmer.reference(dict(b1))
