"""Unit tests: block-compiling fast path (decode cache + timing memo).

The contract under test is byte-identity: for every machine preset and
every run mode, :mod:`repro.arch.blockcache` must produce *exactly* the
RunResult the reference interpreter produces under
``REPRO_ENGINE_FASTPATH=0`` — same float cycles, same counters, same
profiling attribution, same trap types and messages.  See
docs/engine.md for why each of these cases is load-bearing.
"""

import pytest

from repro._errors import RunTimeout, SimulationError
from repro.arch import blockcache, execute, get_machine
from repro.arch.engine import EngineProfile, FASTPATH_ENV, fastpath_enabled
from repro.os import Environment, load_process
from repro.toolchain.compiler import compile_program
from repro.toolchain.linker import LinkLayout, link

from tests.conftest import (
    SMALL_EXPECTED,
    SMALL_SOURCES,
    build_small,
    compile_single,
)

PRESETS = ("core2", "pentium4", "m5_o3cpu")


def _run(exe, fast, machine="core2", env=None, inputs=None, **kw):
    """One execution on a fresh machine, on the chosen engine path.

    Returns either ("ok", snapshot) or ("trap", type name, message) so
    trap parity is asserted with the same comparison as result parity.
    """
    image = load_process(
        exe,
        environment=env if env is not None else Environment.typical(),
        inputs=inputs,
        stack_align=4,
    )
    machine = get_machine(machine).build()
    try:
        r = execute(image, machine, **kw)
    except (RunTimeout, SimulationError) as exc:
        return ("trap", type(exc).__name__, str(exc))
    return (
        "ok",
        r.exit_value,
        r.counters.as_dict(),
        sorted(r.function_cycles.items()),
        r.pc_cycles,
        r.trace,
    )


def both_paths(exe, monkeypatch, **kw):
    """(reference outcome, fast-path outcome) for identical runs."""
    monkeypatch.setenv(FASTPATH_ENV, "0")
    ref = _run(exe, False, **kw)
    monkeypatch.setenv(FASTPATH_ENV, "1")
    fast = _run(exe, True, **kw)
    return ref, fast


@pytest.fixture(scope="module")
def exe():
    return build_small(2)


class TestByteIdentity:
    def test_fastpath_on_by_default(self, monkeypatch):
        monkeypatch.delenv(FASTPATH_ENV, raising=False)
        assert fastpath_enabled()
        monkeypatch.setenv(FASTPATH_ENV, "0")
        assert not fastpath_enabled()

    @pytest.mark.parametrize("preset", PRESETS)
    def test_plain_run_identical(self, exe, monkeypatch, preset):
        ref, fast = both_paths(exe, monkeypatch, machine=preset)
        assert ref[0] == "ok" and ref[1] == SMALL_EXPECTED
        assert fast == ref

    @pytest.mark.parametrize("preset", PRESETS)
    def test_profiling_attribution_identical(self, exe, monkeypatch, preset):
        ref, fast = both_paths(
            exe,
            monkeypatch,
            machine=preset,
            profile_functions=True,
            profile_pcs=True,
        )
        assert fast == ref
        # pc attribution is exhaustive: per-pc cycles sum to the total.
        pc_cycles = fast[4]
        assert sum(pc_cycles) == pytest.approx(
            fast[2]["cycles"], rel=1e-12
        )

    def test_lsd_coverage_identical(self, exe, monkeypatch):
        ref, fast = both_paths(exe, monkeypatch, machine="core2")
        assert fast[2]["lsd_covered"] == ref[2]["lsd_covered"] > 0

    def test_finite_budget_untripped_identical(self, exe, monkeypatch):
        ref, fast = both_paths(exe, monkeypatch, max_cycles=1e12)
        assert ref[0] == "ok"
        assert fast == ref


class TestTrapParity:
    @pytest.mark.parametrize("budget", [0.0, 1.0, 100.0, 5000.5])
    def test_cycle_budget_trip_identical(self, exe, monkeypatch, budget):
        ref, fast = both_paths(exe, monkeypatch, max_cycles=budget)
        assert ref[0] == "trap" and ref[1] == "RunTimeout"
        assert fast == ref

    @pytest.mark.parametrize("maxi", [1, 2, 7, 100, 1234])
    def test_runaway_trip_identical(self, exe, monkeypatch, maxi):
        ref, fast = both_paths(exe, monkeypatch, max_instructions=maxi)
        assert ref[0] == "trap" and ref[1] == "SimulationError"
        assert "runaway" in ref[2]
        assert fast == ref

    def test_division_by_zero_identical(self, monkeypatch):
        exe = compile_single(
            "int z; func main() { return 5 / z; }", opt_level=0
        )
        ref, fast = both_paths(exe, monkeypatch)
        assert ref[0] == "trap" and "division by zero" in ref[2]
        assert fast == ref

    def test_corrupt_return_address_identical(self, monkeypatch):
        src = """
        func main() {
            var x;
            poke(&x + 16, 12345);
            return 0;
        }
        """
        exe = compile_single(src, opt_level=0)
        ref, fast = both_paths(exe, monkeypatch, max_instructions=100_000)
        assert ref[0] == "trap"
        assert fast == ref


class TestLateBlockDiscovery:
    """RET to a computed address can land mid-block — at a pc that is
    not a static leader.  The decode cache must compile that block
    lazily and stay byte-identical with the reference."""

    def _poked_exe(self):
        src = """
        int target;
        func main() {
            var x;
            // O0 frame layout: return address lives 16 bytes above &x.
            poke(&x + 16, target);
            return 0;
        }
        """
        return compile_single(src, opt_level=0)

    def _mid_block_pc(self, exe, cfg):
        cache = blockcache.block_cache_for(exe, cfg)
        static_entries = {pl.entry for pl in cache.static_plans()}
        for j in range(len(exe.ops) - 1, -1, -1):
            if j not in static_entries and exe.ops[j] not in (31, 32, 34):
                return j
        raise AssertionError("no mid-block pc in test program")

    def test_ret_to_mid_block_address_identical(self, monkeypatch):
        exe = self._poked_exe()
        cfg = get_machine("core2")
        j = self._mid_block_pc(exe, cfg)
        inputs = {"target": exe.addrs[j]}
        ref, fast = both_paths(
            exe, monkeypatch, inputs=inputs, max_instructions=100_000
        )
        # Whatever the continuation does (halt or trap), both engine
        # paths must agree exactly.
        assert fast == ref

    def test_mid_block_entry_compiles_lazily(self, monkeypatch):
        exe = self._poked_exe()
        cfg = get_machine("core2")
        j = self._mid_block_pc(exe, cfg)
        cache = blockcache.block_cache_for(exe, cfg)
        variant = (False, False, False, False)
        assert j not in cache.table(variant)
        monkeypatch.setenv(FASTPATH_ENV, "1")
        _run(
            exe,
            True,
            inputs={"target": exe.addrs[j]},
            max_instructions=100_000,
        )
        assert j in cache.table(variant)
        assert cache.plan(j).entry == j


class TestTimingMemoKeys:
    """The memo key includes the entry alignment state: relinking the
    same instruction stream at a different alignment must produce
    different block code (different front-end schedule) while leaving
    the architectural results untouched."""

    def _exe_aligned(self, alignment):
        modules = compile_program(SMALL_SOURCES, opt_level=2, profile="gcc")
        return link(
            modules, layout=LinkLayout(function_alignment=alignment)
        )

    def test_alignment_changes_memo_key_not_results(self, monkeypatch):
        exe16 = self._exe_aligned(16)
        exe1 = self._exe_aligned(1)
        cfg = get_machine("core2")
        plans16 = {
            pl.pcs: pl
            for pl in blockcache.block_cache_for(exe16, cfg).static_plans()
        }
        plans1 = {
            pl.pcs: pl
            for pl in blockcache.block_cache_for(exe1, cfg).static_plans()
        }
        shared = set(plans16) & set(plans1)
        assert shared, "relink should preserve some block shapes"
        assert any(
            (plans16[k].entry_window, plans16[k].entry_line)
            != (plans1[k].entry_window, plans1[k].entry_line)
            for k in shared
        ), "alignment change should move at least one block's memo key"
        # Same program, different layout: identical answers, and each
        # layout byte-identical with its own reference run.
        for exe in (exe16, exe1):
            ref, fast = both_paths(exe, monkeypatch)
            assert fast == ref
            assert ref[1] == SMALL_EXPECTED

    def test_caches_keyed_per_executable_and_config(self):
        exe_a = self._exe_aligned(16)
        exe_b = self._exe_aligned(1)
        cfg = get_machine("core2")
        cfg2 = get_machine("pentium4")
        assert blockcache.block_cache_for(
            exe_a, cfg
        ) is blockcache.block_cache_for(exe_a, cfg)
        assert blockcache.block_cache_for(
            exe_a, cfg
        ) is not blockcache.block_cache_for(exe_b, cfg)
        assert blockcache.block_cache_for(
            exe_a, cfg
        ) is not blockcache.block_cache_for(exe_a, cfg2)


class TestTelemetryAndWarm:
    def test_engine_profile_reports_block_cache(self, exe, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, "1")
        prof = EngineProfile()
        image = load_process(exe, Environment.typical(), stack_align=4)
        execute(image, get_machine("core2").build(), engine_profile=prof)
        bc = prof.to_dict()["block_cache"]
        assert bc["fastpath_runs"] == 1
        assert bc["block_entries"] > 0
        assert bc["block_hits"] + prof.bc_unique == bc["block_entries"]
        assert 0.0 <= bc["hit_ratio"] <= 1.0

    def test_engine_profile_zero_on_reference_path(self, exe, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, "0")
        prof = EngineProfile()
        image = load_process(exe, Environment.typical(), stack_align=4)
        execute(image, get_machine("core2").build(), engine_profile=prof)
        bc = prof.to_dict()["block_cache"]
        assert bc["fastpath_runs"] == 0
        assert bc["block_entries"] == 0

    def test_warm_precompiles_static_blocks(self):
        exe = build_small(2)
        cfg = get_machine("pentium4")
        n = blockcache.warm(exe, cfg)
        cache = blockcache.block_cache_for(exe, cfg)
        assert n == len(cache.static_plans()) > 0
        assert set(cache.table((False, False, False, False))) == {
            pl.entry for pl in cache.static_plans()
        }
