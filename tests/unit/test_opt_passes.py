"""Unit tests: machine-level optimizer passes.

Each pass is tested two ways: structurally (the rewrite happened) and
semantically (programs still compute the same values — covered more
broadly by the differential property tests).
"""

from repro.isa import BasicBlock, Function, Instr, Op
from repro.toolchain.opt.cfgopt import simplify_cfg
from repro.toolchain.opt.liveness import (
    eliminate_dead_code,
    instr_uses_defs,
    live_in_out,
    successors,
)
from repro.toolchain.opt.lvn import lvn_block
from repro.toolchain.opt.peephole import fold_binop, peephole_block
from repro.toolchain.opt.schedule import schedule_block


def ops_of(instrs):
    return [i.op for i in instrs]


class TestPeephole:
    def test_immediate_forming(self):
        instrs = [
            Instr(Op.CONST, rd=2, imm=8),
            Instr(Op.ADD, rd=1, ra=3, rb=2),
            Instr(Op.CONST, rd=2, imm=0),  # redefines r2 -> old r2 dead
            Instr(Op.RET),
        ]
        out = peephole_block(instrs)
        assert any(i.op is Op.ADDI and i.imm == 8 for i in out)

    def test_immediate_forming_conservative_when_const_stays_live(self):
        # r2 may be live out of the block (no redefinition before the
        # end), so neither ADD may be rewritten.
        instrs = [
            Instr(Op.CONST, rd=2, imm=8),
            Instr(Op.ADD, rd=1, ra=3, rb=2),
            Instr(Op.ADD, rd=4, ra=5, rb=2),
        ]
        out = peephole_block(instrs)
        assert [i.op for i in out] == [Op.CONST, Op.ADD, Op.ADD]

    def test_mul_pow2_becomes_shift(self):
        instrs = [
            Instr(Op.MULI, rd=1, ra=2, imm=8),
            Instr(Op.RET),
        ]
        out = peephole_block(instrs)
        assert out[0].op is Op.SHLI and out[0].imm == 3

    def test_add_zero_dropped(self):
        instrs = [Instr(Op.ADDI, rd=1, ra=1, imm=0), Instr(Op.RET)]
        assert ops_of(peephole_block(instrs)) == [Op.RET]

    def test_add_zero_to_other_reg_becomes_mov(self):
        instrs = [Instr(Op.ADDI, rd=1, ra=2, imm=0), Instr(Op.RET)]
        out = peephole_block(instrs)
        assert out[0].op is Op.MOV and out[0].ra == 2

    def test_mul_zero_becomes_const(self):
        instrs = [Instr(Op.MULI, rd=1, ra=2, imm=0), Instr(Op.RET)]
        out = peephole_block(instrs)
        assert out[0].op is Op.CONST and out[0].imm == 0

    def test_constant_folding_through_imm_op(self):
        instrs = [
            Instr(Op.CONST, rd=1, imm=6),
            Instr(Op.ADDI, rd=2, ra=1, imm=7),
            Instr(Op.RET),
        ]
        out = peephole_block(instrs)
        folded = [i for i in out if i.op is Op.CONST and i.rd == 2]
        assert folded and folded[0].imm == 13

    def test_mov_self_dropped(self):
        instrs = [Instr(Op.MOV, rd=3, ra=3), Instr(Op.RET)]
        assert ops_of(peephole_block(instrs)) == [Op.RET]

    def test_relocated_const_never_folded(self):
        instrs = [
            Instr(Op.CONST, rd=1, imm=0, target="g"),
            Instr(Op.ADDI, rd=2, ra=1, imm=8),
            Instr(Op.RET),
        ]
        out = peephole_block(instrs)
        assert any(i.op is Op.CONST and i.target == "g" for i in out)


class TestFoldBinop:
    def test_arithmetic(self):
        assert fold_binop(Op.ADD, 2, 3) == 5
        assert fold_binop(Op.SUB, 2, 3) == -1
        assert fold_binop(Op.MUL, -4, 3) == -12

    def test_division_semantics(self):
        assert fold_binop(Op.DIV, -7, 2) == -3
        assert fold_binop(Op.MOD, -7, 3) == -1
        assert fold_binop(Op.DIV, 7, 0) is None

    def test_comparisons(self):
        assert fold_binop(Op.SLT, 1, 2) == 1
        assert fold_binop(Op.SLE, 2, 2) == 1
        assert fold_binop(Op.SEQ, 1, 2) == 0
        assert fold_binop(Op.SNE, 1, 2) == 1

    def test_wrap64(self):
        assert fold_binop(Op.SHL, 1, 63) == -(2**63)
        assert fold_binop(Op.SHR, -1, 60) == 15


class TestLVN:
    def test_redundant_computation_becomes_mov(self):
        instrs = [
            Instr(Op.ADD, rd=1, ra=2, rb=3),
            Instr(Op.ADD, rd=4, ra=2, rb=3),
        ]
        out = lvn_block(instrs)
        assert out[1].op is Op.MOV and out[1].ra == 1

    def test_commutative_matching(self):
        instrs = [
            Instr(Op.ADD, rd=1, ra=2, rb=3),
            Instr(Op.ADD, rd=4, ra=3, rb=2),
        ]
        out = lvn_block(instrs)
        assert out[1].op is Op.MOV

    def test_noncommutative_not_matched(self):
        instrs = [
            Instr(Op.SUB, rd=1, ra=2, rb=3),
            Instr(Op.SUB, rd=4, ra=3, rb=2),
        ]
        out = lvn_block(instrs)
        assert out[1].op is Op.SUB

    def test_redundant_load_eliminated(self):
        instrs = [
            Instr(Op.LOAD, rd=1, ra=14, imm=-8),
            Instr(Op.LOAD, rd=2, ra=14, imm=-8),
        ]
        out = lvn_block(instrs)
        assert out[1].op is Op.MOV

    def test_store_kills_load_availability(self):
        instrs = [
            Instr(Op.LOAD, rd=1, ra=14, imm=-8),
            Instr(Op.STORE, ra=14, rb=5, imm=-16),
            Instr(Op.LOAD, rd=2, ra=14, imm=-8),
        ]
        out = lvn_block(instrs)
        assert out[2].op is Op.LOAD

    def test_store_to_load_forwarding(self):
        instrs = [
            Instr(Op.STORE, ra=14, rb=5, imm=-8),
            Instr(Op.LOAD, rd=2, ra=14, imm=-8),
        ]
        out = lvn_block(instrs)
        assert out[1].op is Op.MOV and out[1].ra == 5

    def test_call_clobbers_caller_saved_values(self):
        instrs = [
            Instr(Op.CONST, rd=1, imm=7),
            Instr(Op.CALL, target="f"),
            Instr(Op.CONST, rd=2, imm=7),
        ]
        out = lvn_block(instrs)
        # r1 was clobbered by the call; the second CONST must remain.
        assert out[2].op is Op.CONST

    def test_callee_saved_values_survive_call(self):
        instrs = [
            Instr(Op.CONST, rd=7, imm=9),
            Instr(Op.CALL, target="f"),
            Instr(Op.CONST, rd=8, imm=9),
        ]
        out = lvn_block(instrs)
        assert out[2].op is Op.MOV and out[2].ra == 7


class TestLiveness:
    def _func(self):
        return Function(
            "f",
            blocks=[
                BasicBlock(
                    "entry",
                    [
                        Instr(Op.CONST, rd=1, imm=1),  # dead
                        Instr(Op.CONST, rd=0, imm=2),
                        Instr(Op.RET),
                    ],
                )
            ],
        )

    def test_dead_write_removed(self):
        f = self._func()
        removed = eliminate_dead_code(f)
        assert removed == 1
        assert len(f.blocks[0].instrs) == 2

    def test_return_register_kept(self):
        f = self._func()
        eliminate_dead_code(f)
        assert any(
            i.op is Op.CONST and i.rd == 0 for i in f.blocks[0].instrs
        )

    def test_store_never_removed(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock(
                    "entry",
                    [
                        Instr(Op.CONST, rd=1, imm=1),
                        Instr(Op.STORE, ra=15, rb=1, imm=-8),
                        Instr(Op.RET),
                    ],
                )
            ],
        )
        eliminate_dead_code(f)
        assert any(i.op is Op.STORE for i in f.blocks[0].instrs)

    def test_dead_chain_fully_removed(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock(
                    "entry",
                    [
                        Instr(Op.CONST, rd=1, imm=1),
                        Instr(Op.ADDI, rd=2, ra=1, imm=1),
                        Instr(Op.ADDI, rd=3, ra=2, imm=1),
                        Instr(Op.RET),
                    ],
                )
            ],
        )
        assert eliminate_dead_code(f) == 3

    def test_trapping_div_kept_even_when_dead(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock(
                    "entry",
                    [
                        Instr(Op.DIV, rd=1, ra=2, rb=3),
                        Instr(Op.RET),
                    ],
                )
            ],
        )
        eliminate_dead_code(f)
        assert any(i.op is Op.DIV for i in f.blocks[0].instrs)

    def test_value_live_across_branch_kept(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock(
                    "entry",
                    [
                        Instr(Op.CONST, rd=1, imm=5),
                        Instr(Op.BEQZ, ra=2, target="use"),
                    ],
                ),
                BasicBlock("skip", [Instr(Op.RET)]),
                BasicBlock(
                    "use",
                    [Instr(Op.MOV, rd=0, ra=1), Instr(Op.RET)],
                ),
            ],
        )
        eliminate_dead_code(f)
        assert any(i.op is Op.CONST for i in f.blocks[0].instrs)

    def test_successors_fallthrough(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock("a", [Instr(Op.CONST, rd=1, imm=0)]),
                BasicBlock("b", [Instr(Op.RET)]),
            ],
        )
        assert successors(f) == {"a": ["b"], "b": []}

    def test_live_in_out_propagates(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock("a", [Instr(Op.CONST, rd=5, imm=0)]),
                BasicBlock("b", [Instr(Op.MOV, rd=0, ra=5), Instr(Op.RET)]),
            ],
        )
        live_in, live_out = live_in_out(f)
        assert 5 in live_out["a"]
        assert 5 in live_in["b"]

    def test_call_contract(self):
        uses, defs = instr_uses_defs(Instr(Op.CALL, target="f"))
        assert {1, 2, 3, 4, 5, 6} <= set(uses)
        assert 0 in defs and 13 in defs
        assert 7 not in defs  # callee-saved preserved

    def test_ret_contract_reads_callee_saved(self):
        uses, __ = instr_uses_defs(Instr(Op.RET))
        assert {0, 7, 8, 9, 10, 11, 12} <= set(uses)


class TestCfgOpt:
    def test_unreachable_block_removed(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock("a", [Instr(Op.RET)]),
                BasicBlock("dead", [Instr(Op.NOP), Instr(Op.RET)]),
            ],
        )
        simplify_cfg(f)
        assert [b.label for b in f.blocks] == ["a"]

    def test_jump_to_next_removed(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock("a", [Instr(Op.NOP), Instr(Op.JMP, target="b")]),
                BasicBlock("b", [Instr(Op.RET)]),
            ],
        )
        simplify_cfg(f)
        assert not any(i.op is Op.JMP for b in f.blocks for i in b.instrs)

    def test_jump_threading(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock("a", [Instr(Op.BEQZ, ra=1, target="hop")]),
                BasicBlock("x", [Instr(Op.RET)]),
                BasicBlock("hop", [Instr(Op.JMP, target="end")]),
                BasicBlock("end", [Instr(Op.CONST, rd=0, imm=1), Instr(Op.RET)]),
            ],
        )
        simplify_cfg(f)
        branch = f.blocks[0].instrs[-1]
        assert branch.target == "end"

    def test_fallthrough_merge(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock("a", [Instr(Op.CONST, rd=1, imm=1)]),
                BasicBlock("b", [Instr(Op.RET)]),  # unreferenced
            ],
        )
        simplify_cfg(f)
        assert len(f.blocks) == 1
        assert ops_of(f.blocks[0].instrs) == [Op.CONST, Op.RET]

    def test_aligned_block_not_merged(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock("a", [Instr(Op.CONST, rd=1, imm=1)]),
                BasicBlock("b", [Instr(Op.RET)], align=16),
            ],
        )
        simplify_cfg(f)
        assert len(f.blocks) == 2

    def test_never_reorders_blocks(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock("a", [Instr(Op.BEQZ, ra=1, target="c")]),
                BasicBlock("b", [Instr(Op.CONST, rd=0, imm=1), Instr(Op.RET)]),
                BasicBlock("c", [Instr(Op.CONST, rd=0, imm=2), Instr(Op.RET)]),
            ],
        )
        simplify_cfg(f)
        labels = [b.label for b in f.blocks]
        assert labels == sorted(labels, key=labels.index)  # original order


class TestScheduler:
    def test_terminator_stays_last(self):
        instrs = [
            Instr(Op.CONST, rd=1, imm=1),
            Instr(Op.CONST, rd=2, imm=2),
            Instr(Op.JMP, target="L"),
        ]
        out = schedule_block(instrs)
        assert out[-1].op is Op.JMP

    def test_dependences_respected(self):
        instrs = [
            Instr(Op.CONST, rd=1, imm=1),
            Instr(Op.ADDI, rd=2, ra=1, imm=1),
            Instr(Op.ADDI, rd=3, ra=2, imm=1),
            Instr(Op.RET),
        ]
        out = schedule_block(instrs)
        pos = {id(i): n for n, i in enumerate(out)}
        assert pos[id(instrs[0])] < pos[id(instrs[1])] < pos[id(instrs[2])]

    def test_load_hoisted_above_independent_work(self):
        instrs = [
            Instr(Op.CONST, rd=1, imm=1),
            Instr(Op.CONST, rd=2, imm=2),
            Instr(Op.LOAD, rd=3, ra=14, imm=-8),
            Instr(Op.ADD, rd=4, ra=3, rb=3),  # consumer of the load
            Instr(Op.RET),
        ]
        out = schedule_block(instrs)
        load_pos = next(n for n, i in enumerate(out) if i.op is Op.LOAD)
        use_pos = next(n for n, i in enumerate(out) if i.op is Op.ADD)
        assert use_pos - load_pos >= 2  # something was placed between

    def test_memory_order_preserved_through_stores(self):
        instrs = [
            Instr(Op.STORE, ra=14, rb=1, imm=-8),
            Instr(Op.LOAD, rd=2, ra=14, imm=-8),
            Instr(Op.STORE, ra=14, rb=2, imm=-16),
            Instr(Op.RET),
        ]
        out = schedule_block(instrs)
        mem_ops = [i.op for i in out if i.op in (Op.LOAD, Op.STORE)]
        assert mem_ops == [Op.STORE, Op.LOAD, Op.STORE]

    def test_same_multiset_of_instructions(self):
        instrs = [
            Instr(Op.CONST, rd=1, imm=1),
            Instr(Op.LOAD, rd=2, ra=14, imm=-8),
            Instr(Op.ADD, rd=3, ra=1, rb=2),
            Instr(Op.RET),
        ]
        out = schedule_block(instrs)
        assert sorted(map(repr, out)) == sorted(map(repr, instrs))
