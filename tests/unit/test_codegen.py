"""Unit tests: code generation semantics.

Each test compiles a small program and executes it — the observable
contract of the code generator is the program's result.  Run at O0 (no
optimization) so these pin the *generator*, not the pass pipeline; the
differential property tests cover optimized levels.
"""

import pytest

from tests.conftest import run_main


def run0(source, **kw):
    return run_main(source, opt_level=0, **kw)


class TestArithmetic:
    def test_basic_ops(self):
        src = "func main() { return 7 + 3 * 4 - 10 / 2 - 9 % 4; }"
        assert run0(src) == 7 + 12 - 5 - 1

    def test_division_truncates_toward_zero(self):
        assert run0("func main() { return (0 - 7) / 2; }") == -3
        assert run0("func main() { return 7 / (0 - 2); }") == -3

    def test_modulo_keeps_dividend_sign(self):
        assert run0("func main() { return (0 - 7) % 3; }") == -1
        assert run0("func main() { return 7 % (0 - 3); }") == 1

    def test_shifts(self):
        assert run0("func main() { return 5 << 3; }") == 40
        assert run0("func main() { return 40 >> 3; }") == 5

    def test_logical_shift_right_of_negative(self):
        # >> is logical on the 64-bit pattern.
        assert run0("func main() { return ((0 - 1) >> 60) & 15; }") == 15

    def test_bitwise_ops(self):
        assert run0("func main() { return (12 & 10) + (12 | 10) + (12 ^ 10); }") == (
            (12 & 10) + (12 | 10) + (12 ^ 10)
        )

    def test_mul_wraps_to_64_bits(self):
        src = "func main() { return ((1 << 62) * 4) & 255; }"
        assert run0(src) == 0

    def test_unary_ops(self):
        assert run0("func main() { return -5 + 6; }") == 1
        assert run0("func main() { return ~0 + 2; }") == 1
        assert run0("func main() { return !0 + !7; }") == 1


class TestComparisons:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("3 < 4", 1),
            ("4 < 3", 0),
            ("3 <= 3", 1),
            ("4 <= 3", 0),
            ("4 > 3", 1),
            ("3 > 4", 0),
            ("3 >= 3", 1),
            ("2 >= 3", 0),
            ("3 == 3", 1),
            ("3 == 4", 0),
            ("3 != 4", 1),
            ("3 != 3", 0),
        ],
    )
    def test_comparison_values(self, expr, expected):
        assert run0(f"func main() {{ return {expr}; }}") == expected

    def test_negative_comparisons(self):
        assert run0("func main() { return (0 - 5) < 3; }") == 1


class TestShortCircuit:
    def test_and_skips_rhs_on_false(self):
        src = """
        int hits;
        func bump() { hits = hits + 1; return 1; }
        func main() {
            var r;
            r = 0 && bump();
            return hits * 10 + r;
        }
        """
        assert run0(src) == 0

    def test_or_skips_rhs_on_true(self):
        src = """
        int hits;
        func bump() { hits = hits + 1; return 0; }
        func main() {
            var r;
            r = 1 || bump();
            return hits * 10 + r;
        }
        """
        assert run0(src) == 1

    def test_and_or_values_normalized(self):
        assert run0("func main() { return (7 && 9) + (0 || 5); }") == 2

    def test_in_conditions(self):
        src = """
        func main() {
            var a;
            a = 0;
            if (3 > 2 && 2 > 1) { a = a + 1; }
            if (0 || 1) { a = a + 2; }
            if (1 && 0) { a = a + 100; }
            return a;
        }
        """
        assert run0(src) == 3


class TestVariablesAndArrays:
    def test_global_scalar_roundtrip(self):
        assert run0("int g; func main() { g = 41; return g + 1; }") == 42

    def test_global_initializer(self):
        assert run0("int g = 39; func main() { return g + 3; }") == 42

    def test_global_array_initializer(self):
        src = "int a[4] = {10, 20, 30}; func main() { return a[0]+a[1]+a[2]+a[3]; }"
        assert run0(src) == 60

    def test_local_array(self):
        src = """
        func main() {
            var a[5]; var i; var s;
            for (i = 0; i < 5; i = i + 1) { a[i] = i * i; }
            s = 0;
            for (i = 0; i < 5; i = i + 1) { s = s + a[i]; }
            return s;
        }
        """
        assert run0(src) == 30

    def test_byte_array_truncates(self):
        src = """
        byte b[4];
        func main() { b[1] = 300; return b[1]; }
        """
        assert run0(src) == 300 & 0xFF

    def test_addrof_and_peek_poke(self):
        src = """
        int g[4];
        func main() {
            poke(&g + 8, 77);
            return g[1] + peek(&g + 8);
        }
        """
        assert run0(src) == 154

    def test_addrof_local(self):
        src = """
        func main() {
            var x;
            x = 5;
            poke(&x, 9);
            return x;
        }
        """
        assert run0(src) == 9


class TestControlFlow:
    def test_if_else(self):
        src = "func main() { if (0) { return 1; } else { return 2; } }"
        assert run0(src) == 2

    def test_while_loop(self):
        src = """
        func main() {
            var i; var s;
            i = 0; s = 0;
            while (i < 10) { s = s + i; i = i + 1; }
            return s;
        }
        """
        assert run0(src) == 45

    def test_break_exits_innermost(self):
        src = """
        func main() {
            var i; var j; var s;
            s = 0;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 10; j = j + 1) {
                    if (j == 2) { break; }
                    s = s + 1;
                }
            }
            return s;
        }
        """
        assert run0(src) == 6

    def test_continue_runs_for_update(self):
        src = """
        func main() {
            var i; var s;
            s = 0;
            for (i = 0; i < 10; i = i + 1) {
                if (i & 1) { continue; }
                s = s + i;
            }
            return s;
        }
        """
        assert run0(src) == 20

    def test_fall_off_end_returns_zero(self):
        assert run0("int g; func main() { g = 3; }") == 0


class TestCalls:
    def test_argument_passing_order(self):
        src = """
        func f(a, b, c) { return a * 100 + b * 10 + c; }
        func main() { return f(1, 2, 3); }
        """
        assert run0(src) == 123

    def test_six_arguments(self):
        src = """
        func f(a, b, c, d, e, g) { return a+b*2+c*3+d*4+e*5+g*6; }
        func main() { return f(1, 1, 1, 1, 1, 1); }
        """
        assert run0(src) == 21

    def test_nested_calls(self):
        src = """
        func inc(x) { return x + 1; }
        func main() { return inc(inc(inc(0))); }
        """
        assert run0(src) == 3

    def test_call_result_in_expression(self):
        src = """
        func two() { return 2; }
        func main() { return 10 + two() * 3; }
        """
        assert run0(src) == 16

    def test_recursion(self):
        src = """
        func fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        func main() { return fib(10); }
        """
        assert run0(src) == 55

    def test_callee_saved_registers_survive_calls(self):
        # Promoted locals must survive a callee that also promotes.
        src = """
        func clobber() { var a; var b; var c; var d;
            a = 1; b = 2; c = 3; d = 4; return a + b + c + d; }
        func main() {
            var x; var y;
            x = 10; y = 20;
            clobber();
            return x + y;
        }
        """
        for level in (0, 1, 2, 3):
            assert run_main(src, opt_level=level) == 30
