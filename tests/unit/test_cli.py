"""Unit tests: the command-line interface."""

import os
import re
import shlex

import pytest

from repro.cli import build_parser, main

README = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "README.md"
)


def readme_commands():
    """Every ``python -m repro ...`` invocation in the README, as argv
    lists (backslash continuations joined, ``&&`` chains split,
    trailing ``# comments`` stripped)."""
    with open(README) as fh:
        text = fh.read()
    text = re.sub(r"\\\n\s*", " ", text)
    commands = []
    for line in text.splitlines():
        for part in line.split("&&"):
            part = part.strip()
            if part.startswith("python -m repro"):
                tokens = shlex.split(part, comments=True)
                # `python -m repro.audit.fixture ...` runs a different
                # module, not the repro CLI — skip anything whose module
                # token is not exactly `repro`.
                if tokens[2] != "repro":
                    continue
                commands.append(tokens[3:])
    return commands


class TestReadmeExamples:
    """The README's CLI examples must stay in sync with the parser —
    a renamed or removed flag has to fail here, not on a reader."""

    def test_readme_examples_exist(self):
        assert len(readme_commands()) >= 20

    def test_readme_covers_the_service_cli(self):
        heads = {argv[0] for argv in readme_commands() if argv}
        assert {"serve", "submit", "status", "agent", "fsck"} <= heads

    @pytest.mark.parametrize(
        "argv", readme_commands(), ids=lambda a: " ".join(a)[:60]
    )
    def test_readme_example_parses(self, argv, capsys):
        try:
            build_parser().parse_args(argv)
        except SystemExit:
            err = capsys.readouterr().err
            pytest.fail(
                f"README example no longer parses: "
                f"`python -m repro {' '.join(argv)}`\n{err}"
            )


class TestServiceClientErrors:
    def test_status_against_dead_service_is_one_line(self, capsys):
        # A typed diagnosis, not a ConnectionRefusedError traceback.
        assert main(["status", "--http", "127.0.0.1:1"]) == 1
        err = capsys.readouterr().err
        assert "error: ReproError: could not reach service" in err

    def test_study_status_against_dead_service_is_one_line(self, capsys):
        assert main(["status", "deadbeef", "--http", "127.0.0.1:1"]) == 1
        assert "could not reach service" in capsys.readouterr().err


class TestListingCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out and "sphinx3" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "core2" in out and "pentium4" in out and "m5_o3cpu" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "133" in out


class TestRunCommand:
    def test_run_prints_counters_and_verifies(self, capsys):
        assert main(["run", "sphinx3", "--opt", "2"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "verified against reference" in out

    def test_run_with_env_bytes(self, capsys):
        assert main(["run", "sphinx3", "--env-bytes", "256"]) == 0
        assert "env=256B" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "doom"])


class TestStudyCommand:
    def test_env_study(self, capsys):
        assert (
            main(
                [
                    "study",
                    "sphinx3",
                    "env",
                    "--env-start",
                    "100",
                    "--env-stop",
                    "164",
                    "--env-step",
                    "16",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup" in out and "env_bytes" in out

    def test_link_study(self, capsys):
        assert main(["study", "sphinx3", "link", "--orders", "3"]) == 0
        assert "link_order" in capsys.readouterr().out

    @pytest.mark.slow
    def test_parallel_study_matches_serial(self, capsys):
        argv = [
            "study",
            "sphinx3",
            "env",
            "--env-start",
            "100",
            "--env-stop",
            "164",
            "--env-step",
            "32",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # The published study table must be identical; the parallel run
        # only adds the sweep accounting line above it.
        table = serial_out[serial_out.index("env_bytes") :]
        assert table in parallel_out
        assert "sweep:" in parallel_out

    def test_resume_skips_remeasurement(self, capsys, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        argv = [
            "study",
            "sphinx3",
            "env",
            "--env-start",
            "100",
            "--env-stop",
            "164",
            "--env-step",
            "32",
            "--resume",
            journal,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "4 measured + 0 resumed" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 measured + 4 resumed" in second
        # Same published numbers either way.
        assert first[first.index("env_bytes") :] == (
            second[second.index("env_bytes") :]
        )


class TestRandomizedCommand:
    def test_randomized(self, capsys):
        assert main(["randomized", "sphinx3", "--setups", "3"]) == 0
        out = capsys.readouterr().out
        assert "random setups" in out
        assert any(
            verdict in out
            for verdict in ("beneficial", "harmful", "inconclusive")
        )


class TestCharacterizeCommand:
    def test_characterize(self, capsys):
        assert main(["characterize", "sphinx3"]) == 0
        out = capsys.readouterr().out
        assert "hottest function" in out and "opcode mix" in out


class TestArchiveCommands:
    def test_archive_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "a.json")
        assert (
            main(
                [
                    "archive",
                    "sphinx3",
                    path,
                    "--env-start",
                    "100",
                    "--env-stop",
                    "164",
                    "--env-step",
                    "32",
                ]
            )
            == 0
        )
        assert "archived 2 measurements" in capsys.readouterr().out
        assert main(["verify-archive", path]) == 0
        assert "reproduce exactly" in capsys.readouterr().out

    def _archive(self, tmp_path, name):
        path = str(tmp_path / name)
        assert (
            main(
                [
                    "archive",
                    "sphinx3",
                    path,
                    "--env-stop",
                    "132",
                    "--env-step",
                    "32",
                ]
            )
            == 0
        )
        return path

    def test_verify_detects_naive_tampering(self, capsys, tmp_path):
        # Editing a measurement without fixing its checksum is caught
        # at load time by the v2 per-record checksum.
        import json

        path = self._archive(tmp_path, "b.json")
        data = json.load(open(path))
        data["measurements"][0]["measurement"]["counters"]["cycles"] += 5000
        json.dump(data, open(path, "w"))
        capsys.readouterr()
        assert main(["verify-archive", path]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_verify_detects_consistent_tampering(self, capsys, tmp_path):
        # A forger who also recomputes the checksum gets past loading,
        # but re-measurement still exposes the drift.
        import json

        from repro.core.session import record_checksum

        path = self._archive(tmp_path, "c.json")
        data = json.load(open(path))
        record = data["measurements"][0]
        record["measurement"]["counters"]["cycles"] += 5000
        record["sha256"] = record_checksum(record["measurement"])
        json.dump(data, open(path, "w"))
        capsys.readouterr()
        assert main(["verify-archive", path]) == 1
        assert "DRIFT" in capsys.readouterr().out
