"""Unit tests: minic semantic analysis."""

import pytest

from repro.toolchain.errors import CompileError
from repro.toolchain.parser import parse_source
from repro.toolchain.sema import analyze_unit


def analyze(source):
    return analyze_unit(parse_source(source))


class TestScopeRules:
    def test_undeclared_use_rejected(self):
        with pytest.raises(CompileError, match="undeclared"):
            analyze("func f() { return nothere; }")

    def test_declare_before_use_enforced(self):
        with pytest.raises(CompileError, match="undeclared"):
            analyze("func f() { x = 1; var x; return x; }")

    def test_local_shadows_global(self):
        info = analyze("int x; func f() { var x; x = 2; return x; }")
        assert info.funcs["f"].vars["x"].kind == "local"

    def test_duplicate_local_rejected(self):
        with pytest.raises(CompileError, match="duplicate"):
            analyze("func f() { var x; var x; return 0; }")

    def test_duplicate_param_rejected(self):
        with pytest.raises(CompileError, match="duplicate parameter"):
            analyze("func f(a, a) { return 0; }")

    def test_duplicate_global_rejected(self):
        with pytest.raises(CompileError, match="duplicate global"):
            analyze("int g; int g;")

    def test_function_global_collision_rejected(self):
        with pytest.raises(CompileError, match="collides"):
            analyze("int f; func f() { return 0; }")

    def test_intrinsic_name_collision_rejected(self):
        with pytest.raises(CompileError, match="intrinsic"):
            analyze("func peek(x) { return x; }")


class TestArrayRules:
    def test_assign_to_array_rejected(self):
        with pytest.raises(CompileError, match="cannot assign to array"):
            analyze("int a[4]; func f() { a = 1; return 0; }")

    def test_indexing_scalar_rejected(self):
        with pytest.raises(CompileError, match="non-array"):
            analyze("int g; func f() { return g[0]; }")

    def test_store_to_scalar_rejected(self):
        with pytest.raises(CompileError, match="non-array"):
            analyze("int g; func f() { g[0] = 1; return 0; }")

    def test_bare_array_name_rejected(self):
        with pytest.raises(CompileError, match="not a value"):
            analyze("int a[4]; func f() { return a; }")

    def test_addrof_array_allowed(self):
        analyze("int a[4]; func f() { return peek(&a); }")

    def test_for_over_array_variable_rejected(self):
        with pytest.raises(CompileError, match="is an array"):
            analyze(
                "func f() { var a[2]; for (a = 0; a < 2; a = a + 1) { } "
                "return 0; }"
            )


class TestCallsAndControl:
    def test_intrinsic_arity_checked(self):
        with pytest.raises(CompileError, match="argument"):
            analyze("func f() { return peek(1, 2); }")

    def test_poke_arity_checked(self):
        with pytest.raises(CompileError, match="argument"):
            analyze("func f() { poke(1); return 0; }")

    def test_too_many_args_rejected(self):
        with pytest.raises(CompileError, match="more than 6"):
            analyze("func f() { return g(1,2,3,4,5,6,7); }")

    def test_too_many_params_rejected(self):
        with pytest.raises(CompileError, match="more than 6"):
            analyze("func f(a,b,c,d,e,g,h) { return 0; }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError, match="break outside"):
            analyze("func f() { break; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(CompileError, match="continue outside"):
            analyze("func f() { if (1) { continue; } return 0; }")

    def test_extern_call_is_legal(self):
        info = analyze("func f() { return elsewhere(1); }")
        assert "elsewhere" in info.funcs["f"].callees


class TestUsageCounting:
    def test_loop_uses_weighted_higher(self):
        info = analyze(
            """
            func f() {
                var cold; var hot; var i;
                cold = 1;
                for (i = 0; i < 10; i = i + 1) { hot = hot + 1; }
                return cold + hot;
            }
            """
        )
        counts = info.funcs["f"].scalar_use_counts
        assert counts["hot"] > counts["cold"]
        assert counts["i"] > counts["cold"]

    def test_global_array_bases_counted(self):
        info = analyze(
            """
            int tbl[64];
            func f() {
                var i; var s;
                s = 0;
                for (i = 0; i < 64; i = i + 1) { s = s + tbl[i]; }
                return s;
            }
            """
        )
        assert info.funcs["f"].global_base_counts["tbl"] > 0
