"""Unit tests: the observability CLI surface.

``study --trace-out/--manifest-out/--quiet`` artifact emission, progress
on stderr (stdout stays the published tables), and the ``repro obs``
inspector subcommands.
"""

import json

import pytest

from repro.cli import main
from repro.obs.inspect import validate_manifest, validate_trace


def tiny_study(extra):
    return [
        "study", "sphinx3", "env",
        "--env-start", "100", "--env-stop", "164", "--env-step", "32",
    ] + extra


@pytest.fixture()
def traced_artifacts(tmp_path, capsys):
    """Run one traced study; returns (trace_path, manifest_path)."""
    trace = str(tmp_path / "sweep.json")
    assert main(tiny_study(["--trace-out", trace])) == 0
    capsys.readouterr()
    return trace, str(tmp_path / "sweep.manifest.json")


class TestStudyFlags:
    def test_trace_out_writes_a_valid_chrome_trace(self, traced_artifacts):
        trace, _ = traced_artifacts
        with open(trace) as fh:
            data = json.load(fh)
        assert validate_trace(data) == []
        names = {
            ev["name"] for ev in data["traceEvents"] if ev["ph"] == "X"
        }
        assert {"sweep", "setup", "run", "compile", "load"} <= names

    def test_manifest_lands_next_to_the_trace(self, traced_artifacts):
        trace, manifest_path = traced_artifacts
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        assert validate_manifest(manifest) == []
        assert manifest["experiment"]["workload"] == "sphinx3"
        assert [s["env_bytes"] for s in manifest["setups"]] == [
            100, 100, 132, 132,
        ]
        assert manifest["artifacts"]
        assert trace in manifest["artifacts"]
        assert manifest["report"]["measured"] == 4

    def test_manifest_out_overrides_the_default_path(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "custom.json")
        assert main(tiny_study(["--manifest-out", manifest_path])) == 0
        capsys.readouterr()
        with open(manifest_path) as fh:
            assert validate_manifest(json.load(fh)) == []

    def test_progress_goes_to_stderr_not_stdout(self, capsys):
        assert main(tiny_study([])) == 0
        captured = capsys.readouterr()
        assert "sweep [" in captured.err or "sweep " in captured.err
        assert "sweep [" not in captured.out

    def test_quiet_silences_progress(self, capsys):
        assert main(tiny_study(["--quiet"])) == 0
        captured = capsys.readouterr()
        assert "sweep" not in captured.err
        assert "speedup" in captured.out


class TestObsCommand:
    def test_summary_renders_trace_and_manifest(
        self, traced_artifacts, capsys
    ):
        trace, manifest = traced_artifacts
        assert main(["obs", "summary", trace, manifest]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "sweep" in out
        assert "sphinx3" in out

    def test_validate_accepts_good_artifacts(self, traced_artifacts, capsys):
        trace, manifest = traced_artifacts
        assert main(["obs", "validate", trace, manifest]) == 0
        out = capsys.readouterr().out
        assert out.count("OK:") == 2

    def test_validate_rejects_bad_artifacts(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main(["obs", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_merge_produces_one_multi_process_trace(
        self, traced_artifacts, tmp_path, capsys
    ):
        trace, _ = traced_artifacts
        merged_path = str(tmp_path / "merged.json")
        assert main(["obs", "merge", merged_path, trace, trace]) == 0
        capsys.readouterr()
        with open(merged_path) as fh:
            merged = json.load(fh)
        pids = {
            ev["pid"] for ev in merged["traceEvents"] if ev["ph"] == "X"
        }
        assert pids == {1, 2}
        assert main(["obs", "summary", merged_path]) == 0

    def test_diff_compares_two_traces(self, traced_artifacts, capsys):
        trace, _ = traced_artifacts
        assert main(["obs", "diff", trace, trace]) == 0
        out = capsys.readouterr().out
        assert "trace diff" in out and "+0.000" in out

    def test_diff_compares_two_manifests(self, traced_artifacts, capsys):
        _, manifest = traced_artifacts
        assert main(["obs", "diff", manifest, manifest]) == 0
        out = capsys.readouterr().out
        assert "manifest diff" in out

    def test_diff_refuses_mixed_kinds(self, traced_artifacts, capsys):
        trace, manifest = traced_artifacts
        assert main(["obs", "diff", trace, manifest]) == 1

    def test_junk_input_is_a_diagnosis_not_a_crash(self, tmp_path, capsys):
        junk = tmp_path / "junk.json"
        junk.write_text("not json")
        assert main(["obs", "summary", str(junk)]) == 1
        assert "error" in capsys.readouterr().err
