"""Unit tests: the observability CLI surface.

``study --trace-out/--manifest-out/--quiet`` artifact emission, progress
on stderr (stdout stays the published tables), and the ``repro obs``
inspector subcommands.
"""

import json

import pytest

from repro.cli import main
from repro.obs.inspect import validate_manifest, validate_trace


def tiny_study(extra):
    return [
        "study", "sphinx3", "env",
        "--env-start", "100", "--env-stop", "164", "--env-step", "32",
    ] + extra


@pytest.fixture()
def traced_artifacts(tmp_path, capsys):
    """Run one traced study; returns (trace_path, manifest_path)."""
    trace = str(tmp_path / "sweep.json")
    assert main(tiny_study(["--trace-out", trace])) == 0
    capsys.readouterr()
    return trace, str(tmp_path / "sweep.manifest.json")


class TestStudyFlags:
    def test_trace_out_writes_a_valid_chrome_trace(self, traced_artifacts):
        trace, _ = traced_artifacts
        with open(trace) as fh:
            data = json.load(fh)
        assert validate_trace(data) == []
        names = {
            ev["name"] for ev in data["traceEvents"] if ev["ph"] == "X"
        }
        assert {"sweep", "setup", "run", "compile", "load"} <= names

    def test_manifest_lands_next_to_the_trace(self, traced_artifacts):
        trace, manifest_path = traced_artifacts
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        assert validate_manifest(manifest) == []
        assert manifest["experiment"]["workload"] == "sphinx3"
        assert [s["env_bytes"] for s in manifest["setups"]] == [
            100, 100, 132, 132,
        ]
        assert manifest["artifacts"]
        assert trace in manifest["artifacts"]
        assert manifest["report"]["measured"] == 4

    def test_manifest_out_overrides_the_default_path(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "custom.json")
        assert main(tiny_study(["--manifest-out", manifest_path])) == 0
        capsys.readouterr()
        with open(manifest_path) as fh:
            assert validate_manifest(json.load(fh)) == []

    def test_progress_goes_to_stderr_not_stdout(self, capsys):
        assert main(tiny_study([])) == 0
        captured = capsys.readouterr()
        assert "sweep [" in captured.err or "sweep " in captured.err
        assert "sweep [" not in captured.out

    def test_quiet_silences_progress(self, capsys):
        assert main(tiny_study(["--quiet"])) == 0
        captured = capsys.readouterr()
        assert "sweep" not in captured.err
        assert "speedup" in captured.out


class TestObsCommand:
    def test_summary_renders_trace_and_manifest(
        self, traced_artifacts, capsys
    ):
        trace, manifest = traced_artifacts
        assert main(["obs", "summary", trace, manifest]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "sweep" in out
        assert "sphinx3" in out

    def test_validate_accepts_good_artifacts(self, traced_artifacts, capsys):
        trace, manifest = traced_artifacts
        assert main(["obs", "validate", trace, manifest]) == 0
        out = capsys.readouterr().out
        assert out.count("OK:") == 2

    def test_validate_rejects_bad_artifacts(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main(["obs", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_merge_produces_one_multi_process_trace(
        self, traced_artifacts, tmp_path, capsys
    ):
        trace, _ = traced_artifacts
        merged_path = str(tmp_path / "merged.json")
        assert main(["obs", "merge", merged_path, trace, trace]) == 0
        capsys.readouterr()
        with open(merged_path) as fh:
            merged = json.load(fh)
        pids = {
            ev["pid"] for ev in merged["traceEvents"] if ev["ph"] == "X"
        }
        assert pids == {1, 2}
        assert main(["obs", "summary", merged_path]) == 0

    def test_diff_compares_two_traces(self, traced_artifacts, capsys):
        trace, _ = traced_artifacts
        assert main(["obs", "diff", trace, trace]) == 0
        out = capsys.readouterr().out
        assert "trace diff" in out and "+0.000" in out

    def test_diff_compares_two_manifests(self, traced_artifacts, capsys):
        _, manifest = traced_artifacts
        assert main(["obs", "diff", manifest, manifest]) == 0
        out = capsys.readouterr().out
        assert "manifest diff" in out

    def test_diff_refuses_mixed_kinds(self, traced_artifacts, capsys):
        trace, manifest = traced_artifacts
        assert main(["obs", "diff", trace, manifest]) == 1

    def test_junk_input_is_a_diagnosis_not_a_crash(self, tmp_path, capsys):
        junk = tmp_path / "junk.json"
        junk.write_text("not json")
        assert main(["obs", "summary", str(junk)]) == 1
        assert "error" in capsys.readouterr().err


class TestChaosAndJournalCommands:
    def _chaos_args(self, journal, report):
        return tiny_study([
            "--quiet", "--jobs", "2", "--resume", journal,
            "--fault-plan",
            "seed=3,worker_crash=0.4,worker_hang=0.25,"
            "transient=1.0,max_transient_attempts=1",
            "--report-out", report,
        ])

    @pytest.mark.slow
    def test_chaos_sweep_report_equals_fault_free_serial(
        self, tmp_path, capsys
    ):
        serial = str(tmp_path / "serial.json")
        chaos = str(tmp_path / "chaos.json")
        journal = str(tmp_path / "chaos.jsonl")
        assert main(tiny_study(["--quiet", "--report-out", serial])) == 0
        assert main(self._chaos_args(journal, chaos)) == 0
        capsys.readouterr()
        with open(serial, "rb") as a, open(chaos, "rb") as b:
            assert a.read() == b.read()

    @pytest.mark.slow
    def test_journal_compact_summary_and_validate(self, tmp_path, capsys):
        journal = str(tmp_path / "chaos.jsonl")
        report = str(tmp_path / "report.json")
        assert main(self._chaos_args(journal, report)) == 0
        capsys.readouterr()
        assert main(["journal", "compact", journal]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "4 -> 4 records" in out
        assert main(["obs", "validate", journal]) == 0
        assert "OK: valid journal" in capsys.readouterr().out
        assert main(["journal", "summary", journal]) == 0
        out = capsys.readouterr().out
        assert "distinct setups" in out and "metrics" in out
        assert main(["obs", "summary", journal]) == 0

    def test_validate_flags_stale_duplicates_until_compacted(
        self, tmp_path, capsys
    ):
        journal = str(tmp_path / "sweep.jsonl")
        args = tiny_study(["--quiet", "--jobs", "1", "--resume", journal])
        assert main(args) == 0
        assert main(args) == 0  # resumed run appends a second metrics aux
        capsys.readouterr()
        assert main(["obs", "validate", journal]) == 1
        assert "stale duplicate" in capsys.readouterr().out
        assert main(["journal", "compact", journal]) == 0
        capsys.readouterr()
        assert main(["obs", "validate", journal]) == 0
        assert "OK: valid journal" in capsys.readouterr().out

    def test_journal_summary_refuses_non_journals(self, tmp_path, capsys):
        junk = tmp_path / "junk.json"
        junk.write_text(json.dumps({"traceEvents": []}))
        assert main(["journal", "summary", str(junk)]) == 1
        assert "not a checkpoint journal" in capsys.readouterr().err

    def test_bad_fault_plan_spec_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit):
            main(tiny_study(["--fault-plan", "meteor=1.0"]))
        assert "unknown fault-plan key" in capsys.readouterr().err

    @pytest.mark.slow
    def test_degraded_sweep_is_reported_in_summary_and_manifest(
        self, tmp_path, capsys
    ):
        manifest_path = str(tmp_path / "m.json")
        report_path = str(tmp_path / "r.json")
        args = tiny_study([
            "--quiet", "--jobs", "2",
            "--fault-plan",
            "seed=1,worker_crash=1.0,transient=0.0",
            "--manifest-out", manifest_path,
            "--report-out", report_path,
        ])
        assert main(args) == 0  # degraded, not failed: fallback measured all
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        assert manifest["report"]["degraded"] is True
        assert len(manifest["report"]["degraded_setups"]) == 4
        assert manifest["fault_plan"]["worker_crash_rate"] == 1.0
        assert manifest["runner"]["max_respawns"] == 8
