"""Unit tests: the linker (placement, relocation, link order, COMMON)."""

import pytest

from repro.isa import Op
from repro.toolchain import LinkLayout, LinkError, link
from repro.toolchain.compiler import compile_program, compile_unit
from repro.toolchain.linker import DATA_BASE, TEXT_BASE, link_orders

from tests.conftest import SMALL_SOURCES, build_small, run_exe


class TestPlacement:
    def test_start_placed_first(self, small_exe_o2):
        assert small_exe_o2.placed[0].name == "_start"
        assert small_exe_o2.placed[0].base == TEXT_BASE

    def test_functions_aligned(self, small_exe_o2):
        for pf in small_exe_o2.placed:
            assert pf.base % 16 == 0

    def test_custom_alignment_honoured(self):
        exe = link(
            compile_program(SMALL_SOURCES),
            layout=LinkLayout(function_alignment=64),
        )
        for pf in exe.placed:
            assert pf.base % 64 == 0

    def test_functions_do_not_overlap(self, small_exe_o2):
        placed = sorted(small_exe_o2.placed, key=lambda p: p.base)
        for a, b in zip(placed, placed[1:]):
            assert a.end <= b.base

    def test_addresses_monotone_and_contiguous(self, small_exe_o2):
        exe = small_exe_o2
        for pf in exe.placed:
            for i in range(pf.flat_start, pf.flat_end - 1):
                assert exe.addrs[i] + exe.sizes[i] == exe.addrs[i + 1]

    def test_addr_to_index_roundtrip(self, small_exe_o2):
        exe = small_exe_o2
        for i, addr in enumerate(exe.addrs):
            assert exe.addr_to_index[addr] == i

    def test_data_placed_above_text(self, small_exe_o2):
        exe = small_exe_o2
        assert exe.data_start == DATA_BASE
        assert exe.data_start >= exe.text_end
        assert exe.data_addrs["table"] >= DATA_BASE

    def test_data_alignment(self, small_exe_o2):
        for addr in small_exe_o2.data_addrs.values():
            assert addr % 8 == 0


class TestLinkOrder:
    def test_order_changes_function_addresses(self):
        a = build_small(order=["kernel", "main"])
        b = build_small(order=["main", "kernel"])
        assert (
            a.placed_by_name("fill").base != b.placed_by_name("fill").base
        )

    def test_order_preserves_semantics(self):
        a = run_exe(build_small(order=["kernel", "main"]))
        b = run_exe(build_small(order=["main", "kernel"]))
        assert a.exit_value == b.exit_value

    def test_bad_order_rejected(self):
        modules = compile_program(SMALL_SOURCES)
        with pytest.raises(LinkError, match="permutation"):
            link(modules, order=["kernel", "kernel"])
        with pytest.raises(LinkError, match="permutation"):
            link(modules, order=["kernel"])

    def test_link_orders_helper(self):
        orders = link_orders(["a", "b", "c"])
        assert len(orders) == 6
        assert ["a", "b", "c"] in orders


class TestSymbols:
    def test_unresolved_call_rejected(self):
        mod = compile_unit("func main() { return ghost(); }", "m")
        with pytest.raises(LinkError, match="ghost"):
            link([mod])

    def test_missing_entry_rejected(self):
        mod = compile_unit("func notmain() { return 1; }", "m")
        with pytest.raises(LinkError, match="main"):
            link([mod])

    def test_duplicate_function_rejected(self):
        m1 = compile_unit("func f() { return 1; } func main() { return f(); }", "a")
        m2 = compile_unit("func f() { return 2; }", "b")
        with pytest.raises(LinkError, match="defined in both"):
            link([m1, m2])

    def test_duplicate_module_names_rejected(self):
        m1 = compile_unit("func main() { return 1; }", "same")
        m2 = compile_unit("func g() { return 2; }", "same")
        with pytest.raises(LinkError, match="duplicate module names"):
            link([m1, m2])

    def test_const_relocation_patched(self, small_exe_o2):
        exe = small_exe_o2
        table = exe.data_addrs["table"]
        # Some CONST must carry the table's address.
        assert table in exe.imms


class TestCommonSymbols:
    def test_shared_globals_merged(self, small_exe_o2):
        # `table` is declared in both modules but placed once.
        assert list(small_exe_o2.data_addrs).count("table") == 1

    def test_conflicting_shapes_rejected(self):
        m1 = compile_unit("int g[4]; func main() { return g[0]; }", "a")
        m2 = compile_unit("int g[8]; func f() { return g[1]; }", "b")
        with pytest.raises(LinkError, match="conflicting shapes"):
            link([m1, m2])

    def test_double_initialization_rejected(self):
        m1 = compile_unit("int g = 1; func main() { return g; }", "a")
        m2 = compile_unit("int g = 2; func f() { return g; }", "b")
        with pytest.raises(LinkError, match="initialized in both"):
            link([m1, m2])

    def test_single_initializer_wins(self):
        m1 = compile_unit("int g; func main() { return g; }", "a")
        m2 = compile_unit("int g = 7; func f() { return g; }", "b")
        exe = link([m1, m2])
        assert run_exe(exe).exit_value == 7


class TestLayoutValidation:
    def test_bad_function_alignment_rejected(self):
        with pytest.raises(LinkError, match="power of two"):
            LinkLayout(function_alignment=3).validated()

    def test_unaligned_bases_rejected(self):
        with pytest.raises(LinkError, match="page-aligned"):
            LinkLayout(text_base=0x400001).validated()

    def test_data_below_text_rejected(self):
        with pytest.raises(LinkError, match="above"):
            LinkLayout(text_base=0x600000, data_base=0x400000).validated()


class TestBlockAlignmentPadding:
    def test_icc_loop_heads_padded(self):
        mods = compile_program(SMALL_SOURCES, opt_level=2, profile="icc")
        exe = link(mods)
        # Find loop-head targets and check their addresses are 16-aligned.
        heads = {
            exe.targets[i]
            for i, op in enumerate(exe.ops)
            if op in (28, 29, 30) and 0 <= exe.targets[i] <= i
        }
        aligned = [exe.addrs[h] % 16 == 0 for h in heads]
        assert aligned and all(aligned)

    def test_gcc_no_padding_nops(self):
        exe = build_small(2, "gcc")
        # gcc profile never requests loop alignment; padding NOPs between
        # blocks should be absent (NOP op never emitted by codegen).
        assert all(op != int(Op.NOP) for op in exe.ops)
