"""Tests for repro.audit: every crime rule, the document dispatcher,
the seeded fixture, and the `repro audit` CLI contract (stable codes,
exit semantics, --json, --record)."""

import json

import pytest

from repro.audit import CRIME_CODES, audit_document, audit_file, audit_manifest
from repro.audit.fixture import crime_manifest, write_fixture
from repro.audit.rules import duplicate_setup_count, run_stats_checks
from repro.cli import main
from repro.core.errors import ArchiveCorruption
from repro.core.setup import ExperimentalSetup
from repro.obs.manifest import build_manifest, validate_manifest
from repro.stats import analyze_speedups

SPEEDUPS = [1.02, 1.10, 0.97, 1.15, 1.04, 1.08, 0.99, 1.21, 1.05, 1.11]


def clean_stats(**overrides):
    """A stats section as a healthy F8 run records it."""
    section = analyze_speedups(SPEEDUPS, seed=3).to_dict()
    section.update(overrides)
    return section


def manifest_with(stats, n_setups=20, **kwargs):
    setups = [
        ExperimentalSetup(env_bytes=100 + 16 * i) for i in range(n_setups)
    ]
    return build_manifest(setups=setups, stats=stats, **kwargs)


class TestCrimeRules:
    def test_clean_stats_have_no_findings(self):
        assert run_stats_checks(clean_stats(), n_setups=20) == []

    def test_single_setup(self):
        stats = clean_stats(distinct_setups=1)
        codes = [f.code for f in run_stats_checks(stats, n_setups=20)]
        assert "single-setup" in codes

    def test_pseudoreplication(self):
        stats = clean_stats(distinct_setups=3)
        codes = [f.code for f in run_stats_checks(stats, n_setups=20)]
        assert "pseudoreplication" in codes
        assert "single-setup" not in codes

    def test_no_verdict_no_single_setup_charge(self):
        # Without a claimed conclusion there is nothing to convict.
        stats = clean_stats(distinct_setups=1)
        stats.pop("verdict")
        codes = [f.code for f in run_stats_checks(stats, n_setups=20)]
        assert "single-setup" not in codes

    def test_weak_ci_no_intervals(self):
        stats = clean_stats(intervals=[])
        codes = [f.code for f in run_stats_checks(stats, n_setups=20)]
        assert "weak-ci" in codes

    def test_weak_ci_normal_only_on_skewed_sample(self):
        skewed = [1.0, 1.01, 1.02, 1.01, 1.0, 1.02, 1.01, 3.0]
        stats = analyze_speedups(skewed, seed=1).to_dict()
        stats["intervals"] = [
            iv for iv in stats["intervals"] if iv["method"] == "t"
        ]
        findings = run_stats_checks(stats, n_setups=16)
        assert [f.code for f in findings] == ["weak-ci"]
        # Adding the BCa interval back acquits.
        assert run_stats_checks(
            analyze_speedups(skewed, seed=1).to_dict(), n_setups=16
        ) == []

    def test_weak_ci_recomputes_skew_from_raw_sample(self):
        # A lying recorded skewness does not fool the rule.
        skewed = [1.0, 1.01, 1.02, 1.01, 1.0, 1.02, 1.01, 3.0]
        stats = analyze_speedups(skewed, seed=1).to_dict()
        stats["intervals"] = [
            iv for iv in stats["intervals"] if iv["method"] == "t"
        ]
        stats["skewness"] = 0.0
        assert "weak-ci" in [
            f.code for f in run_stats_checks(stats, n_setups=16)
        ]

    def test_selective_reporting_fewer_pairs_than_setups(self):
        findings = run_stats_checks(clean_stats(), n_setups=40)
        assert [f.code for f in findings] == ["selective-reporting"]

    def test_selective_reporting_unacknowledged_quarantines(self):
        report = {"requested": 20, "measured": 16, "resumed": 0}
        findings = run_stats_checks(clean_stats(), report=report, n_setups=20)
        assert [f.code for f in findings] == ["selective-reporting"]

    def test_ratio_aggregation_declared(self):
        stats = clean_stats(
            aggregate={"method": "arithmetic-mean", "value": 1.07}
        )
        codes = [f.code for f in run_stats_checks(stats, n_setups=20)]
        assert "ratio-aggregation" in codes

    def test_ratio_aggregation_mislabeled_geomean(self):
        amean = sum(SPEEDUPS) / len(SPEEDUPS)
        stats = clean_stats(
            aggregate={"method": "geometric-mean", "value": amean}
        )
        codes = [f.code for f in run_stats_checks(stats, n_setups=20)]
        assert "ratio-aggregation" in codes

    def test_honest_geomean_is_acquitted(self):
        assert run_stats_checks(clean_stats(), n_setups=20) == []

    def test_absent_stats_yield_nothing(self):
        assert run_stats_checks(None, n_setups=20) == []

    def test_duplicate_setup_count_ignores_describe(self):
        a = {"machine": "core2", "env_bytes": 100, "describe": "x"}
        b = {"machine": "core2", "env_bytes": 100, "describe": "y"}
        c = {"machine": "core2", "env_bytes": 132, "describe": "z"}
        assert duplicate_setup_count([a, b, c]) == 1


class TestDispatcher:
    def test_manifest_dispatch(self):
        result = audit_document(manifest_with(clean_stats()), "m.json")
        assert result.kind == "manifest"
        assert result.clean

    def test_report_dispatch(self):
        report = {
            "requested": 4,
            "measured": 4,
            "resumed": 0,
            "statuses": ["measured"] * 4,
            "quarantined": [],
        }
        result = audit_document(report, "r.json")
        assert result.kind == "report"
        assert result.clean
        assert any("no statistical claims" in n for n in result.notes)

    def test_quarantined_report_gets_a_note(self):
        report = {
            "requested": 4,
            "measured": 3,
            "resumed": 0,
            "statuses": ["measured"] * 3 + ["quarantined"],
            "quarantined": [{"index": 3}],
        }
        result = audit_document(report, "r.json")
        assert result.clean
        assert any("quarantined" in n for n in result.notes)

    def test_unknown_document_raises(self):
        with pytest.raises(ArchiveCorruption):
            audit_document({"format": "something-else"}, "x.json")
        with pytest.raises(ArchiveCorruption):
            audit_document([1, 2, 3], "x.json")

    def test_archive_without_manifest_is_clean_with_note(self, tmp_path):
        from repro.core import Experiment
        from repro.core.session import save_measurements
        from repro import workloads

        exp = Experiment(workloads.get("lbm"), size="test")
        setup = ExperimentalSetup()
        path = tmp_path / "a.json"
        save_measurements(str(path), [exp.run(setup), exp.run(setup)])
        result = audit_file(str(path))
        assert result.kind == "archive"
        assert result.clean
        assert any("no embedded manifest" in n for n in result.notes)
        # Same setup twice -> the duplicate note, not a conviction.
        assert any("duplicate" in n for n in result.notes)

    def test_archive_with_crime_manifest_convicts(self, tmp_path):
        from repro.core import Experiment
        from repro.core.session import save_measurements
        from repro import workloads

        exp = Experiment(workloads.get("lbm"), size="test")
        path = tmp_path / "a.json"
        save_measurements(
            str(path),
            [exp.run(ExperimentalSetup())],
            manifest=crime_manifest(),
        )
        result = audit_file(str(path))
        assert result.kind == "archive"
        assert set(result.codes) == set(CRIME_CODES)

    def test_invalid_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ArchiveCorruption):
            audit_file(str(bad))

    def test_missing_file_raises_taxonomy_error(self, tmp_path):
        # The CLI turns this into a one-line error, never a traceback.
        with pytest.raises(ArchiveCorruption):
            audit_file(str(tmp_path / "absent.json"))


class TestFixture:
    def test_fixture_is_a_valid_manifest(self):
        assert validate_manifest(crime_manifest()) == []

    def test_fixture_commits_every_crime_exactly_once_each(self):
        result = audit_manifest(crime_manifest(), "fixture")
        assert result.codes == list(CRIME_CODES)

    def test_write_fixture_round_trips(self, tmp_path):
        path = tmp_path / "crimes.json"
        write_fixture(str(path))
        result = audit_file(str(path))
        assert set(result.codes) == set(CRIME_CODES)


class TestAuditCli:
    def fixture_path(self, tmp_path):
        path = tmp_path / "crimes.json"
        write_fixture(str(path))
        return str(path)

    def clean_path(self, tmp_path):
        from repro.obs.manifest import save_manifest

        path = tmp_path / "clean.json"
        save_manifest(str(path), manifest_with(clean_stats()))
        return str(path)

    def test_clean_document_exits_zero(self, tmp_path, capsys):
        assert main(["audit", self.clean_path(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_crimes_exit_nonzero_naming_every_code(self, tmp_path, capsys):
        assert main(["audit", self.fixture_path(tmp_path)]) == 1
        out = capsys.readouterr().out
        for code in CRIME_CODES:
            assert code in out

    def test_json_verdict_is_machine_readable(self, tmp_path, capsys):
        assert main(["audit", "--json", self.fixture_path(tmp_path)]) == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["clean"] is False
        assert [f["code"] for f in verdict["findings"]] == list(CRIME_CODES)
        assert all(
            f["severity"] in ("high", "medium") for f in verdict["findings"]
        )

    def test_record_writes_audit_section(self, tmp_path, capsys):
        path = self.clean_path(tmp_path)
        assert main(["audit", "--record", path]) == 0
        with open(path) as fh:
            document = json.load(fh)
        assert document["audit"]["clean"] is True
        assert validate_manifest(document) == []
        # Auditing the recorded document is still clean.
        assert main(["audit", path]) == 0

    def test_record_on_bare_report_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(
            json.dumps(
                {
                    "requested": 2,
                    "measured": 2,
                    "resumed": 0,
                    "statuses": ["measured"] * 2,
                    "quarantined": [],
                }
            )
        )
        assert main(["audit", "--record", str(path)]) == 2
        assert "--record" in capsys.readouterr().err

    def test_unknown_document_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text("{}")
        assert main(["audit", str(path)]) == 1
        assert "error: ArchiveCorruption" in capsys.readouterr().err
