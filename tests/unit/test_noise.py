"""Unit tests: measurement-noise model and the bias-vs-noise contrast."""

import pytest

from repro import workloads
from repro.core import Experiment, ExperimentalSetup
from repro.core.noise import (
    NoiseModel,
    bias_vs_noise_demo,
    repeated_measurement,
)


@pytest.fixture(scope="module")
def exp():
    return Experiment(workloads.get("sphinx3"), size="test", seed=0)


class TestNoiseModel:
    def test_zero_noise_is_identity(self):
        nm = NoiseModel(magnitude=0.0)
        assert nm.jitter(1000.0, 3, 7) == 1000.0

    def test_jitter_bounded(self):
        nm = NoiseModel(magnitude=0.02, seed=1)
        for rep in range(50):
            v = nm.jitter(1000.0, rep, 0)
            assert 980.0 <= v <= 1020.0

    def test_deterministic(self):
        a = NoiseModel(magnitude=0.01, seed=5)
        b = NoiseModel(magnitude=0.01, seed=5)
        assert a.jitter(100.0, 2, 3) == b.jitter(100.0, 2, 3)

    def test_varies_across_repetitions(self):
        nm = NoiseModel(magnitude=0.01, seed=5)
        values = {nm.jitter(1000.0, rep, 0) for rep in range(10)}
        assert len(values) > 5

    def test_magnitude_validated(self):
        with pytest.raises(ValueError):
            NoiseModel(magnitude=1.5)


class TestRepeatedMeasurement:
    def test_interval_brackets_truth(self, exp):
        setup = ExperimentalSetup(env_bytes=100)
        true = exp.run(setup).cycles
        rm = repeated_measurement(exp, setup, repetitions=20)
        # With symmetric noise the interval should usually contain the
        # true value; pin the deterministic instance we ship.
        assert rm.interval.lo < true * 1.01
        assert rm.interval.hi > true * 0.99

    def test_more_repetitions_tighter_interval(self, exp):
        setup = ExperimentalSetup(env_bytes=100)
        narrow = repeated_measurement(exp, setup, repetitions=40)
        wide = repeated_measurement(exp, setup, repetitions=4)
        assert narrow.interval.width < wide.interval.width

    def test_requires_two_reps(self, exp):
        with pytest.raises(ValueError):
            repeated_measurement(exp, ExperimentalSetup(), repetitions=1)


class TestBiasVsNoise:
    def test_repetition_cannot_fix_bias(self, exp):
        """The paper's core statistical point: two setups, each measured
        many times with tight intervals, confidently contradict each
        other about the same program."""
        setups = [
            ExperimentalSetup(env_bytes=100),  # misaligned stack
            ExperimentalSetup(env_bytes=104),  # aligned stack
        ]
        result = bias_vs_noise_demo(
            exp, setups, repetitions=12, noise=NoiseModel(magnitude=0.005)
        )
        assert result.repetition_misleads
        assert result.disjoint_pairs == 1

    def test_huge_noise_masks_bias(self, exp):
        setups = [
            ExperimentalSetup(env_bytes=100),
            ExperimentalSetup(env_bytes=104),
        ]
        result = bias_vs_noise_demo(
            exp, setups, repetitions=4, noise=NoiseModel(magnitude=0.3)
        )
        # With noise far larger than the bias, intervals overlap.
        assert not result.repetition_misleads

    def test_requires_two_setups(self, exp):
        with pytest.raises(ValueError):
            bias_vs_noise_demo(exp, [ExperimentalSetup()])
