"""Unit tests: attribution, layout inspection, and interventions."""

import pytest

from repro import workloads
from repro.analysis import (
    attribute_delta,
    counter_correlations,
    hot_functions,
    loop_heads,
    pearson,
    set_conflict_score,
    stack_alignment_profile,
    stack_start_for_env,
)
from repro.analysis.layout import code_set_footprint, data_set_footprint
from repro.arch.cache import CacheConfig
from repro.core import Experiment, ExperimentalSetup
from repro.os import Environment
from repro.os.loader import load_process


@pytest.fixture(scope="module")
def exp():
    return Experiment(workloads.get("sphinx3"), size="test", seed=0)


@pytest.fixture(scope="module")
def setup():
    return ExperimentalSetup()


class TestAttribution:
    def test_env_delta_fully_explained(self, exp, setup):
        """The model is linear in its counters for same-binary runs, so
        attribution between two env sizes must have zero residual."""
        a = exp.run(setup.with_changes(env_bytes=100))
        b = exp.run(setup.with_changes(env_bytes=132))
        att = attribute_delta(a, b, setup.machine_config())
        assert att.total_delta == pytest.approx(
            b.cycles - a.cycles, abs=1e-9
        )
        assert abs(att.unexplained) < max(1.0, abs(att.total_delta) * 0.05)

    def test_alignment_dominates_env_bias(self, exp, setup):
        a = exp.run(setup.with_changes(env_bytes=104))  # aligned sp
        b = exp.run(setup.with_changes(env_bytes=100))  # misaligned sp
        att = attribute_delta(a, b, setup.machine_config())
        assert att.dominant_cause() in ("unaligned_accesses", "line_splits")

    def test_ranked_sorted_by_magnitude(self, exp, setup):
        a = exp.run(setup.with_changes(env_bytes=100))
        b = exp.run(setup.with_changes(opt_level=3, env_bytes=100))
        att = attribute_delta(a, b, setup.machine_config())
        mags = [abs(v) for _, v in att.ranked()]
        assert mags == sorted(mags, reverse=True)


class TestCorrelations:
    def test_pearson_basics(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_pearson_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    @pytest.mark.slow
    def test_correlations_over_env_sweep(self, exp, setup):
        ms = [
            exp.run(setup.with_changes(env_bytes=e))
            for e in range(100, 400, 20)
        ]
        ranked = counter_correlations(ms)
        names = [n for n, _ in ranked]
        # Alignment counters must be among the top suspects.
        assert set(names[:3]) & {"unaligned_accesses", "line_splits"}

    def test_needs_three_measurements(self, exp, setup):
        with pytest.raises(ValueError):
            counter_correlations([exp.run(setup)])


class TestHotFunctions:
    def test_profile_required(self, exp, setup):
        with pytest.raises(ValueError):
            hot_functions(exp.run(setup))

    def test_finds_the_kernel(self, exp, setup):
        m = exp.run(setup, profile_functions=True)
        top = [name for name, _ in hot_functions(m, top=3)]
        assert "gmm_score" in top


class TestLayout:
    def test_loop_heads_found(self, exp, setup):
        heads = loop_heads(exp.build(setup))
        assert heads
        for h in heads:
            assert 0 <= h.window_offset < 16
            assert 0 <= h.line_offset < 64
            assert h.body_instructions > 0

    def test_link_order_changes_footprints(self, exp, setup):
        cache = CacheConfig("L1I", 4096, 64, 2)
        mods = exp.workload.module_names()
        a = exp.build(setup.with_changes(link_order=tuple(mods)))
        b = exp.build(setup.with_changes(link_order=tuple(reversed(mods))))
        assert code_set_footprint(a, cache) != code_set_footprint(b, cache)

    def test_data_footprint_counts_lines(self, exp, setup):
        cache = CacheConfig("L1D", 4096, 64, 2)
        fp = data_set_footprint(exp.build(setup), cache)
        total_lines = sum(fp.values())
        assert total_lines > 0

    def test_conflict_score(self):
        assert set_conflict_score({0: 5, 1: 1}, ways=2) == 3

    def test_stack_start_matches_loader(self, exp, setup):
        env = Environment.of_size(200)
        predicted = stack_start_for_env(env)
        img = load_process(exp.build(setup), env)
        assert predicted == img.sp_start

    def test_alignment_profile_phases(self):
        prof = stack_alignment_profile(
            list(range(100, 132, 4)), Environment.empty()
        )
        mods8 = {m8 for _, m8, _ in prof}
        assert mods8 <= {0, 4}
        assert len(mods8) == 2  # both phases appear over a 4-byte sweep
