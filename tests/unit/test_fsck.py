"""Unit tests: ``repro fsck`` — audit and self-healing repair.

Covers the acceptance scenario directly: a deliberately damaged
workspace (torn journal + bit-flipped store entry + damaged archive
record) is restored to a resumable state by ``--repair``, and
unrepairable damage (manifest mismatches, destroyed headers) drives a
nonzero exit code instead of a silent shrug.
"""

import json
import os

import pytest

from repro import faults, workloads
from repro.core import Experiment, ExperimentalSetup
from repro.core.runner import Journal
from repro.core.session import load_measurements, save_measurements
from repro.fsck import (
    DAMAGE,
    HYGIENE,
    classify,
    fsck_paths,
)
from repro.obs.manifest import build_manifest, file_checksum, save_manifest
from repro.store import open_store

_SHARED = {}


def shared_measurement():
    """One real measurement, built once for the whole module."""
    if "m" not in _SHARED:
        exp = Experiment(workloads.get("sphinx3"))
        _SHARED["exp"] = exp
        _SHARED["m"] = exp.run(ExperimentalSetup(env_bytes=100))
    return _SHARED["exp"], _SHARED["m"]


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


def make_journal(path, records=3, duplicates=0, torn_lines=0):
    j = Journal(str(path), "sweep-t")
    j.open_for_append()
    for i in range(records):
        j.append(i, {"v": i})
    for i in range(duplicates):
        j.append(i, {"v": i + 100})
    j.close()
    if torn_lines:
        with open(path, "a") as fh:
            for _ in range(torn_lines):
                fh.write('{"index": 99, "measurement": {"torn')
                fh.write("\n")
    return str(path)


def make_archive(path, damage_record=None, truncate=False):
    _, m = shared_measurement()
    save_measurements(str(path), [m, m, m], note="fsck-test")
    if damage_record is not None:
        payload = json.load(open(path))
        payload["measurements"][damage_record]["measurement"]["counters"][
            "cycles"
        ] += 1
        json.dump(payload, open(path, "w"), indent=1)
    if truncate:
        data = open(path).read()
        open(path, "w").write(data[: len(data) // 2])
    return str(path)


def make_store(root, bitflip=False):
    exp, m = shared_measurement()
    store = open_store(str(root))
    assert store.put_measurement(exp, m)
    if bitflip:
        paths = [
            os.path.join(dp, f)
            for dp, _, fs in os.walk(root)
            for f in fs
            if f.endswith(".json")
        ]
        target = sorted(paths)[0]
        blob = open(target, "rb").read()
        mid = len(blob) // 2
        open(target, "wb").write(
            blob[:mid] + bytes([blob[mid] ^ 1]) + blob[mid + 1 :]
        )
    return str(root)


class TestClassify:
    def test_every_artifact_class(self, tmp_path):
        journal = make_journal(tmp_path / "j.jsonl")
        archive = make_archive(tmp_path / "a.json")
        store = make_store(tmp_path / "st")
        manifest = str(tmp_path / "m.json")
        save_manifest(manifest, build_manifest(note="t"))
        assert classify(journal) == "journal"
        assert classify(archive) == "archive"
        assert classify(store) == "store"
        assert classify(manifest) == "manifest"

    def test_archive_with_embedded_manifest_is_an_archive(self, tmp_path):
        _, m = shared_measurement()
        path = str(tmp_path / "a.json")
        save_measurements(path, [m], manifest=build_manifest(note="t"))
        assert classify(path) == "archive"

    def test_truncated_archive_still_classifies(self, tmp_path):
        path = make_archive(tmp_path / "a.json", truncate=True)
        assert classify(path) == "archive"

    def test_unrecognized_is_none(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("hello world\n")
        assert classify(str(path)) is None


class TestJournalAudit:
    def test_clean_journal_has_no_findings(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl")
        report = fsck_paths([path])
        assert report.findings == []
        assert report.exit_code == 0

    def test_torn_lines_are_damage_until_repaired(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", torn_lines=2)
        report = fsck_paths([path])
        assert report.exit_code == 1
        (finding,) = report.findings
        assert finding.severity == DAMAGE and "2 torn" in finding.problem
        repaired = fsck_paths([path], repair=True)
        assert repaired.exit_code == 0
        assert all(f.repaired for f in repaired.findings)
        # Healed journal is loadable and resumable.
        j = Journal(path, "sweep-t")
        assert set(j.load()) == {0, 1, 2}
        assert fsck_paths([path]).findings == []

    def test_duplicates_are_hygiene_not_damage(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", duplicates=3)
        report = fsck_paths([path])
        assert report.exit_code == 0  # hygiene never fails the audit
        (finding,) = report.findings
        assert finding.severity == HYGIENE and "duplicate" in finding.problem
        fsck_paths([path], repair=True)
        assert fsck_paths([path]).findings == []
        # Compaction kept the latest generation, like resume would.
        assert Journal(path, "sweep-t").load()[0] == {"v": 100}

    def test_destroyed_header_is_unrepairable(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl")
        lines = open(path).read().splitlines()
        lines[0] = lines[0][:10]
        open(path, "w").write("\n".join(lines) + "\n")
        report = fsck_paths([path], repair=True)
        assert report.exit_code == 1
        assert not report.findings[0].repairable


class TestArchiveAudit:
    def test_damaged_record_is_dropped_on_repair(self, tmp_path):
        path = make_archive(tmp_path / "a.json", damage_record=1)
        report = fsck_paths([path])
        assert report.exit_code == 1
        assert "record 1" in report.findings[0].problem
        repaired = fsck_paths([path], repair=True)
        assert repaired.exit_code == 0
        # The healed archive loads cleanly with the survivors.
        assert len(load_measurements(path)) == 2
        assert fsck_paths([path]).findings == []

    def test_truncated_archive_is_unrepairable(self, tmp_path):
        path = make_archive(tmp_path / "a.json", truncate=True)
        report = fsck_paths([path], repair=True)
        assert report.exit_code == 1
        assert not report.findings[0].repairable


class TestStoreAudit:
    def test_corrupt_entry_is_purged_on_repair(self, tmp_path):
        root = make_store(tmp_path / "st", bitflip=True)
        report = fsck_paths([root])
        assert report.exit_code == 1
        assert "fails deep verification" in report.findings[0].problem
        repaired = fsck_paths([root], repair=True)
        assert repaired.exit_code == 0
        assert open_store(root).verify() == (0, [])
        assert fsck_paths([root]).findings == []

    def test_stale_tmp_debris_is_swept_and_reported(self, tmp_path):
        root = make_store(tmp_path / "st")
        shard = next(
            os.path.join(root, d)
            for d in os.listdir(root)
            if os.path.isdir(os.path.join(root, d))
        )
        open(os.path.join(shard, ".tmp-crash"), "w").write('{"torn')
        report = fsck_paths([root])
        assert report.exit_code == 0
        (finding,) = report.findings
        assert finding.severity == HYGIENE and finding.repaired
        assert "swept 1 stale" in finding.problem


class TestManifestAudit:
    def test_artifact_mismatch_is_never_repaired(self, tmp_path):
        artifact = tmp_path / "trace.json"
        artifact.write_text("{}")
        manifest = str(tmp_path / "m.json")
        save_manifest(
            manifest,
            build_manifest(
                note="t", artifacts={str(artifact): file_checksum(str(artifact))}
            ),
        )
        assert fsck_paths([manifest]).exit_code == 0
        artifact.write_text("{} ")
        report = fsck_paths([manifest], repair=True)
        assert report.exit_code == 1
        assert not report.findings[0].repairable
        assert "checksum mismatch" in report.findings[0].problem

    def test_missing_artifact_is_damage(self, tmp_path):
        manifest = str(tmp_path / "m.json")
        save_manifest(
            manifest,
            build_manifest(note="t", artifacts={"gone.json": "0" * 64}),
        )
        report = fsck_paths([manifest])
        assert report.exit_code == 1
        assert "missing on disk" in report.findings[0].problem


class TestDriver:
    def test_missing_and_unknown_paths_are_damage(self, tmp_path):
        stray = tmp_path / "stray.txt"
        stray.write_text("not an artifact")
        report = fsck_paths([str(tmp_path / "nope"), str(stray)])
        assert report.exit_code == 1
        kinds = [f.kind for f in report.findings]
        assert kinds == ["missing", "unknown"]
        assert not any(f.repairable for f in report.findings)

    def test_acceptance_scenario_full_workspace_heal(self, tmp_path):
        """Torn journal + bit-flipped store entry + damaged archive
        record: one ``fsck --repair`` restores a resumable workspace."""
        journal = make_journal(tmp_path / "j.jsonl", torn_lines=1)
        archive = make_archive(tmp_path / "a.json", damage_record=0)
        store = make_store(tmp_path / "st", bitflip=True)
        paths = [journal, archive, store]
        before = fsck_paths(paths)
        assert before.exit_code == 1
        assert len(before.unrepaired_damage) == 3
        healed = fsck_paths(paths, repair=True)
        assert healed.exit_code == 0
        assert fsck_paths(paths).findings == []
        # Every artifact is usable again.
        assert set(Journal(journal, "sweep-t").load()) == {0, 1, 2}
        assert len(load_measurements(archive)) == 2
        assert open_store(store).verify() == (0, [])

    def test_json_report_shape(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", torn_lines=1)
        report = fsck_paths([path])
        data = json.loads(report.to_json())
        assert data["format"] == "repro-fsck-v1"
        assert data["exit_code"] == 1
        assert data["audited"] == [{"path": path, "kind": "journal"}]
        assert data["findings"][0]["severity"] == "damage"
        assert data["unrepaired_damage"] == 1

    def test_summary_lines_name_every_artifact(self, tmp_path):
        clean = make_journal(tmp_path / "j.jsonl")
        report = fsck_paths([clean])
        lines = report.summary_lines()
        assert lines[0] == f"journal {clean}: clean"
        assert lines[-1] == "fsck: clean"


class TestCli:
    def test_fsck_command_exit_codes_and_json(self, tmp_path, capsys):
        from repro.cli import main

        path = make_journal(tmp_path / "j.jsonl", torn_lines=1)
        out_json = str(tmp_path / "report.json")
        assert main(["fsck", path, "--json", out_json]) == 1
        data = json.load(open(out_json))
        assert data["format"] == "repro-fsck-v1" and data["exit_code"] == 1
        assert "UNREPAIRED" in capsys.readouterr().out
        assert main(["fsck", path, "--repair"]) == 0
        assert main(["fsck", path]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fsck_json_to_stdout(self, tmp_path, capsys):
        from repro.cli import main

        path = make_journal(tmp_path / "j.jsonl")
        assert main(["fsck", path, "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert '"format": "repro-fsck-v1"' in out
