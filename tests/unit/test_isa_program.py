"""Unit tests: program containers (blocks, functions, modules)."""

import pytest

from repro.isa import BasicBlock, DataObject, Function, Instr, Module, Op


def _ret_block(label="entry"):
    return BasicBlock(label, [Instr(Op.CONST, rd=0, imm=1), Instr(Op.RET)])


class TestBasicBlock:
    def test_terminator_detection(self):
        blk = _ret_block()
        assert blk.terminator() is not None
        assert blk.terminator().op is Op.RET

    def test_open_block_has_no_terminator(self):
        blk = BasicBlock("b", [Instr(Op.NOP)])
        assert blk.terminator() is None

    def test_successors_of_jump(self):
        blk = BasicBlock("b", [Instr(Op.JMP, target="L2")])
        assert blk.successors() == ("L2",)

    def test_successors_of_branch_include_fallthrough(self):
        blk = BasicBlock("b", [Instr(Op.BEQZ, ra=1, target="L2")])
        assert blk.successors() == ("L2", None)

    def test_successors_of_ret_empty(self):
        assert _ret_block().successors() == ()

    def test_copy_deep_copies_instrs(self):
        blk = _ret_block()
        cp = blk.copy()
        cp.instrs[0].imm = 99
        assert blk.instrs[0].imm == 1

    def test_copy_preserves_alignment(self):
        blk = BasicBlock("b", [Instr(Op.NOP)], align=16)
        assert blk.copy().align == 16

    def test_size_bytes(self):
        assert _ret_block().size_bytes() == 4  # CONST small (3) + RET (1)


class TestFunction:
    def test_block_lookup(self):
        f = Function("f", blocks=[_ret_block("a"), _ret_block("b")])
        assert f.block("b").label == "b"
        with pytest.raises(KeyError):
            f.block("missing")

    def test_instruction_iteration_in_layout_order(self):
        f = Function(
            "f",
            blocks=[
                BasicBlock("a", [Instr(Op.NOP)]),
                BasicBlock("b", [Instr(Op.RET)]),
            ],
        )
        ops = [i.op for i in f.instructions()]
        assert ops == [Op.NOP, Op.RET]

    def test_counts(self):
        f = Function("f", blocks=[_ret_block()])
        assert f.num_instructions() == 2
        assert f.size_bytes() == 4


class TestDataObject:
    def test_word_object_size(self):
        assert DataObject("a", 10).size_bytes == 80

    def test_byte_object_size(self):
        assert DataObject("a", 10, kind="bytes").size_bytes == 10

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            DataObject("a", 1, kind="floats")

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            DataObject("a", 0)

    def test_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            DataObject("a", 1, align=3)

    def test_rejects_oversized_initializer(self):
        with pytest.raises(ValueError):
            DataObject("a", 2, init=[1, 2, 3])


class TestModule:
    def test_duplicate_function_rejected(self):
        m = Module("m")
        m.add_function(Function("f", blocks=[_ret_block()]))
        with pytest.raises(ValueError):
            m.add_function(Function("f", blocks=[_ret_block()]))

    def test_duplicate_data_rejected(self):
        m = Module("m")
        m.add_data(DataObject("g", 4))
        with pytest.raises(ValueError):
            m.add_data(DataObject("g", 4))

    def test_undefined_symbols_finds_extern_calls(self):
        m = Module("m")
        blk = BasicBlock(
            "entry", [Instr(Op.CALL, target="extern_fn"), Instr(Op.RET)]
        )
        m.add_function(Function("f", blocks=[blk]))
        assert list(m.undefined_symbols()) == ["extern_fn"]

    def test_defined_symbols_are_not_undefined(self):
        m = Module("m")
        m.add_data(DataObject("g", 4))
        blk = BasicBlock(
            "entry",
            [
                Instr(Op.CONST, rd=1, imm=0, target="g"),
                Instr(Op.RET),
            ],
        )
        m.add_function(Function("f", blocks=[blk]))
        assert list(m.undefined_symbols()) == []
