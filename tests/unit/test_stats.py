"""Unit tests: statistics (distributions cross-checked against scipy)."""

import math

import pytest
import scipy.stats

from repro.core.errors import StatsError
from repro.core.stats import (
    ConfidenceInterval,
    SummaryStats,
    bootstrap_confidence_interval,
    geometric_mean,
    incomplete_beta,
    kernel_density,
    normal_cdf,
    normal_ppf,
    quantile,
    skewness,
    t_cdf,
    t_confidence_interval,
    t_ppf,
)


class TestDistributionsAgainstScipy:
    @pytest.mark.parametrize("x", [-3.0, -1.0, 0.0, 0.5, 2.5])
    def test_normal_cdf(self, x):
        assert normal_cdf(x) == pytest.approx(scipy.stats.norm.cdf(x), abs=1e-10)

    @pytest.mark.parametrize("p", [0.01, 0.1, 0.5, 0.9, 0.975, 0.999])
    def test_normal_ppf(self, p):
        assert normal_ppf(p) == pytest.approx(scipy.stats.norm.ppf(p), abs=1e-7)

    @pytest.mark.parametrize("df", [1, 2, 5, 10, 30, 100])
    @pytest.mark.parametrize("t", [-2.5, -0.5, 0.0, 1.0, 3.0])
    def test_t_cdf(self, df, t):
        assert t_cdf(t, df) == pytest.approx(
            scipy.stats.t.cdf(t, df), abs=1e-9
        )

    @pytest.mark.parametrize("df", [1, 3, 9, 29])
    @pytest.mark.parametrize("p", [0.025, 0.1, 0.5, 0.9, 0.975])
    def test_t_ppf(self, df, p):
        assert t_ppf(p, df) == pytest.approx(
            scipy.stats.t.ppf(p, df), rel=1e-6, abs=1e-7
        )

    def test_incomplete_beta_against_scipy(self):
        for a, b, x in [(0.5, 0.5, 0.3), (2, 3, 0.7), (5, 1, 0.99)]:
            assert incomplete_beta(a, b, x) == pytest.approx(
                scipy.stats.beta.cdf(x, a, b), abs=1e-10
            )

    def test_ppf_domain_checked(self):
        with pytest.raises(ValueError):
            normal_ppf(0.0)
        with pytest.raises(ValueError):
            t_ppf(1.0, 5)


class TestSummaryStats:
    def test_known_sample(self):
        s = SummaryStats.from_values([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.std == pytest.approx(
            math.sqrt(sum((v - 2.5) ** 2 for v in [1, 2, 3, 4]) / 3)
        )

    def test_single_value(self):
        s = SummaryStats.from_values([7.0])
        assert s.std == 0.0
        assert s.q1 == s.q3 == 7.0

    def test_spread(self):
        assert SummaryStats.from_values([2.0, 4.0]).spread == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SummaryStats.from_values([])

    def test_quantile_interpolation(self):
        xs = [0.0, 10.0]
        assert quantile(xs, 0.5) == 5.0
        assert quantile(xs, 0.25) == 2.5

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestIntervals:
    def test_t_interval_matches_scipy(self):
        values = [10.0, 12.0, 9.0, 11.0, 10.5, 12.5, 9.5]
        ours = t_confidence_interval(values, level=0.95)
        n = len(values)
        mean = sum(values) / n
        se = scipy.stats.sem(values)
        lo, hi = scipy.stats.t.interval(0.95, n - 1, loc=mean, scale=se)
        assert ours.lo == pytest.approx(lo, rel=1e-6)
        assert ours.hi == pytest.approx(hi, rel=1e-6)

    def test_interval_contains_mean(self):
        ci = t_confidence_interval([1.0, 2.0, 3.0])
        assert ci.contains(ci.mean)

    def test_wider_at_higher_level(self):
        values = [1.0, 2.0, 3.0, 2.5, 1.5]
        assert (
            t_confidence_interval(values, 0.99).width
            > t_confidence_interval(values, 0.90).width
        )

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            t_confidence_interval([1.0])

    def test_bootstrap_deterministic(self):
        values = [1.0, 3.0, 2.0, 5.0, 4.0]
        a = bootstrap_confidence_interval(values, seed=3)
        b = bootstrap_confidence_interval(values, seed=3)
        assert (a.lo, a.hi) == (b.lo, b.hi)

    def test_bootstrap_brackets_mean(self):
        values = [float(v) for v in range(1, 30)]
        ci = bootstrap_confidence_interval(values)
        assert ci.lo < ci.mean < ci.hi

    def test_interval_str(self):
        ci = ConfidenceInterval(lo=0.9, hi=1.1, level=0.95, mean=1.0)
        assert "0.9" in str(ci) and "95%" in str(ci)

    def test_interval_str_names_its_method(self):
        ci = ConfidenceInterval(lo=0.9, hi=1.1, level=0.95, mean=1.0)
        assert ci.method == "t" and "t" in str(ci)
        boot = bootstrap_confidence_interval([1.0, 3.0, 2.0, 5.0, 4.0])
        assert boot.method == "bootstrap" and "bootstrap" in str(boot)


class TestIntervalHardening:
    """Degenerate inputs raise typed StatsError (still a ValueError, so
    pre-existing callers keep working)."""

    def test_stats_error_is_a_value_error(self):
        assert issubclass(StatsError, ValueError)

    @pytest.mark.parametrize(
        "interval", [t_confidence_interval, bootstrap_confidence_interval]
    )
    def test_small_samples_raise(self, interval):
        with pytest.raises(StatsError):
            interval([])
        with pytest.raises(StatsError):
            interval([1.0])

    @pytest.mark.parametrize(
        "interval", [t_confidence_interval, bootstrap_confidence_interval]
    )
    def test_zero_variance_raises(self, interval):
        with pytest.raises(StatsError):
            interval([2.0, 2.0, 2.0])

    @pytest.mark.parametrize(
        "interval", [t_confidence_interval, bootstrap_confidence_interval]
    )
    @pytest.mark.parametrize("level", [0.0, 1.0, -0.1, 1.5])
    def test_level_edges_raise(self, interval, level):
        with pytest.raises(StatsError):
            interval([1.0, 2.0, 3.0], level=level)

    def test_error_messages_name_the_problem(self):
        with pytest.raises(StatsError, match="at least 2"):
            t_confidence_interval([1.0])
        with pytest.raises(StatsError, match="level"):
            t_confidence_interval([1.0, 2.0], level=1.0)


class TestSkewness:
    def test_symmetric_sample_is_zero(self):
        assert skewness([1.0, 2.0, 3.0]) == pytest.approx(0.0)

    def test_matches_scipy_bias_corrected(self):
        values = [1.0, 1.1, 1.2, 1.1, 1.0, 3.0, 1.2, 1.1]
        assert skewness(values) == pytest.approx(
            scipy.stats.skew(values, bias=False)
        )

    def test_degenerate_samples_report_no_asymmetry(self):
        assert skewness([]) == 0.0
        assert skewness([1.0, 2.0]) == 0.0
        assert skewness([5.0, 5.0, 5.0]) == 0.0


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestKernelDensity:
    def test_density_integrates_to_one(self):
        vs = kernel_density([1.0, 2.0, 2.5, 3.0, 10.0], points=256)
        step = vs.grid[1] - vs.grid[0]
        assert sum(vs.density) * step == pytest.approx(1.0, abs=0.02)

    def test_peak_near_mode(self):
        vs = kernel_density([5.0] * 10 + [1.0], points=128)
        peak = vs.grid[vs.density.index(max(vs.density))]
        assert abs(peak - 5.0) < 1.0

    def test_degenerate_sample(self):
        vs = kernel_density([3.0, 3.0, 3.0])
        assert vs.grid == (3.0,)
        assert vs.density == (1.0,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kernel_density([])
