"""Unit tests: storage chaos — fault-aware I/O, graceful degradation.

The storage fault family (``journal_fsync_stall``, ``disk_full``,
``store_bitflip``, ``journal_torn_tail``) must behave exactly like the
measurement/process/network families: deterministic in the seeded plan,
and every injected failure lands on a *real* recovery path — a sick
disk degrades the sweep loudly instead of crashing it or silently
changing its science.
"""

import json
import os

import pytest

from repro import faults, storageio, workloads
from repro.core import Experiment, ExperimentalSetup
from repro.core.errors import (
    ArchiveCorruption,
    JournalWriteError,
    StorageWriteError,
)
from repro.core.runner import (
    Journal,
    MemoryJournal,
    ResilientJournal,
    RunnerConfig,
    SweepRunner,
    compact_journal,
    sweep_id,
)
from repro.store import open_store

WORKLOAD = "sphinx3"
SETUPS = [ExperimentalSetup(env_bytes=e) for e in (100, 116, 132, 148)]


def fresh_experiment():
    return Experiment(workloads.get(WORKLOAD))


def run_sweep(plan=None, journal=None, store=None, exp=None):
    runner = SweepRunner(
        exp or fresh_experiment(),
        RunnerConfig(backoff_base=0.001),
        journal_path=journal,
        fault_plan=plan,
        store=store,
        sleep=lambda s: None,
    )
    return runner.run(SETUPS)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


class TestTypedJournalErrors:
    """Satellite: ENOSPC/OSError from the journal writer surfaces as a
    typed error carrying the journal path and record index."""

    def test_real_oserror_becomes_journal_write_error(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path, "sweep-x")
        j.open_for_append()

        def failing_fsync(fh, key, attempt=1):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.core.runner.storageio.fsync", failing_fsync)
        with pytest.raises(JournalWriteError) as excinfo:
            j.append(3, {"x": 1})
        assert excinfo.value.record == 3
        assert path in str(excinfo.value)
        assert "record 3" in str(excinfo.value)
        j.close()

    def test_error_taxonomy(self):
        assert issubclass(JournalWriteError, StorageWriteError)
        from repro.core.errors import is_retryable

        assert not is_retryable(JournalWriteError("boom"))


class TestJournalDiskFull:
    def test_enospc_falls_back_to_memory_journal_loudly(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        plan = faults.FaultPlan(
            seed=4, disk_full_rate=1.0, transient_fraction=0.0
        )
        result = run_sweep(plan=plan, journal=path)
        rep = result.report
        # Every measurement still landed; the loss is declared, loudly.
        assert rep.complete
        assert rep.degraded
        assert any("journal fell back to memory" in s for s in rep.degraded_storage)
        assert "STORAGE DEGRADED" in rep.summary_line()
        # The on-disk journal holds no measurement records (the header
        # predates the first injected failure).
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == 1  # header only
        assert json.loads(lines[0])["format"].endswith("journal")

    def test_memory_fallback_keeps_every_record(self, tmp_path):
        inner = Journal(str(tmp_path / "j.jsonl"), "s")
        inner.open_for_append()
        events = []
        rj = ResilientJournal(inner, on_degrade=events.append)
        plan = faults.FaultPlan(
            seed=4, disk_full_rate=1.0, transient_fraction=0.0
        )
        with faults.injected_faults(plan):
            rj.append(0, {"a": 1}, fault_key="k0")
            rj.append(1, {"b": 2}, fault_key="k1")
        assert rj.degraded
        assert len(events) == 1 and events[0].record == 0
        assert rj.failure is events[0]
        assert isinstance(rj._memory, MemoryJournal)
        assert rj._memory.records == {0: {"a": 1}, 1: {"b": 2}}
        rj.close()

    def test_degraded_journal_skips_compaction(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        plan = faults.FaultPlan(
            seed=4, disk_full_rate=1.0, transient_fraction=0.0
        )
        runner = SweepRunner(
            fresh_experiment(),
            RunnerConfig(backoff_base=0.001, journal_max_records=1),
            journal_path=path,
            fault_plan=plan,
            sleep=lambda s: None,
        )
        before = open(path).read() if os.path.exists(path) else None
        result = runner.run(SETUPS)
        assert result.report.degraded
        # A memory-degraded journal must never be compacted (the disk
        # file is stale; rewriting it could publish a lie).
        header = json.loads(open(path).readline())
        assert header["format"].endswith("journal")


class TestJournalTornTail:
    def test_torn_tail_is_silent_and_recovered_on_resume(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        plan = faults.FaultPlan(
            seed=7,
            torn_tail_rate=1.0,
            transient_fraction=1.0,
            max_transient_attempts=len(SETUPS),
        )
        exp = fresh_experiment()
        first = run_sweep(plan=plan, journal=path, exp=exp)
        # The sweep believed every append landed: no degradation at all.
        assert first.report.complete
        assert not first.report.degraded
        # ...but the disk holds only torn halves: nothing recoverable.
        sid = sweep_id(WORKLOAD, exp.size, exp.seed, SETUPS)
        probe = Journal(path, sid)
        assert probe.load() == {}
        assert probe.recovered_torn == len(SETUPS)
        # Resume: the tear is transient and its attempt dimension is the
        # recovery count, so the re-run journals durably this time.
        second = run_sweep(plan=plan, journal=path, exp=exp)
        assert second.report.complete
        assert Journal(path, sid).load().keys() == set(range(len(SETUPS)))
        # Byte-identical science across the lossy cycle.
        assert [m.cycles for m in first.ok] == [m.cycles for m in second.ok]

    def test_torn_tail_truncates_single_line_only(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path, "s")
        j.open_for_append()
        plan = faults.FaultPlan(
            seed=7, torn_tail_rate=1.0, transient_fraction=1.0,
            max_transient_attempts=1,
        )
        with faults.injected_faults(plan):
            j.append(0, {"a": 1}, fault_key="k")  # torn (attempt 1)
        j.append(1, {"b": 2})  # no fault key: always durable
        j.close()
        reloaded = Journal(path, "s")
        assert reloaded.load() == {1: {"b": 2}}
        assert reloaded.recovered_torn == 1


class TestStoreDiskFull:
    def test_store_write_failure_disables_puts_for_the_sweep(self, tmp_path):
        store = open_store(str(tmp_path / "st"))
        plan = faults.FaultPlan(
            seed=2, disk_full_rate=1.0, transient_fraction=0.0
        )
        result = run_sweep(plan=plan, store=store)
        rep = result.report
        assert rep.complete  # measurements never depend on the store
        assert rep.degraded
        assert any(
            "store writes disabled" in s for s in rep.degraded_storage
        )
        assert store.write_disabled
        assert "ENOSPC" in store.disabled_reason
        assert store.provenance()["write_disabled"] is True
        assert "writes disabled" in store.summary()
        # Nothing was published.
        assert store.stats()["entries"] == 0

    def test_put_failure_does_not_raise(self, tmp_path):
        store = open_store(str(tmp_path / "st"))
        exp = fresh_experiment()
        m = exp.run(SETUPS[0])
        plan = faults.FaultPlan(
            seed=2, disk_full_rate=1.0, transient_fraction=0.0
        )
        with faults.injected_faults(plan):
            assert store.put_measurement(exp, m) is False
        assert store.write_disabled
        # Later puts are skipped without touching the sick disk.
        with faults.injected_faults(plan):
            assert store.put_measurement(exp, m) is False


class TestStoreBitflip:
    def test_bitflip_is_detected_and_treated_as_miss(self, tmp_path):
        store = open_store(str(tmp_path / "st"))
        exp = fresh_experiment()
        m = exp.run(SETUPS[0])
        plan = faults.FaultPlan(
            seed=9, store_bitflip_rate=1.0, transient_fraction=0.0
        )
        with faults.injected_faults(plan):
            assert store.put_measurement(exp, m) is True
        # Deep verify flags the flipped entry (read-only).
        ok, corrupt = store.verify()
        assert ok == 0 and len(corrupt) == 1
        # The read path detects, purges, and misses — never serves junk.
        assert store.get_measurement(exp, SETUPS[0]) is None
        assert store.corrupt == 1
        assert store.stats()["entries"] == 0

    def test_bitflip_offset_is_deterministic(self, tmp_path):
        payload = b"x" * 256
        flips = []
        for _ in range(2):
            path = str(tmp_path / "f.bin")
            with open(path, "wb") as fh:
                fh.write(payload)
            plan = faults.FaultPlan(
                seed=9, store_bitflip_rate=1.0, transient_fraction=0.0
            )
            with faults.injected_faults(plan):
                assert storageio.maybe_bitflip(path, "some-key")
            data = open(path, "rb").read()
            flips.append(
                [i for i, (a, b) in enumerate(zip(payload, data)) if a != b]
            )
        assert flips[0] == flips[1]
        assert len(flips[0]) == 1


class TestFsyncStall:
    def test_stall_changes_timing_not_bytes(self, tmp_path):
        plan = faults.FaultPlan(
            seed=5,
            fsync_stall_rate=1.0,
            fsync_stall_seconds=0.001,
            transient_fraction=0.0,
        )
        stalled = run_sweep(plan=plan, journal=str(tmp_path / "a.jsonl"))
        plain = run_sweep(journal=str(tmp_path / "b.jsonl"))
        assert stalled.report.to_json() == plain.report.to_json()
        assert [m.cycles for m in stalled.ok] == [m.cycles for m in plain.ok]


class TestCompactionVsStall:
    """Satellite: compaction racing ``journal_fsync_stall`` must never
    publish a partially-synced rewrite."""

    def _journal_with_duplicates(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path, "s")
        j.open_for_append()
        for i in range(3):
            j.append(i, {"v": i})
        for i in range(3):  # stale duplicates
            j.append(i, {"v": i + 10})
        j.close()
        return path

    def test_compaction_under_stall_still_verifies(self, tmp_path):
        path = self._journal_with_duplicates(tmp_path)
        plan = faults.FaultPlan(
            seed=5,
            fsync_stall_rate=1.0,
            fsync_stall_seconds=0.001,
            transient_fraction=0.0,
        )
        with faults.injected_faults(plan):
            stats = compact_journal(path)
        assert stats.records_after == 3
        assert Journal(path, "s").load() == {i: {"v": i + 10} for i in range(3)}

    def test_unsynced_rewrite_is_never_published(self, tmp_path, monkeypatch):
        path = self._journal_with_duplicates(tmp_path)
        original = open(path, "rb").read()

        def torn_fsync(fh, key, attempt=1):
            # A sync that silently lost the tail of the rewrite: flush,
            # then truncate what "reached" the platter.
            fh.flush()
            os.ftruncate(fh.fileno(), os.fstat(fh.fileno()).st_size // 2)

        monkeypatch.setattr(
            "repro.core.runner.storageio.fsync", torn_fsync
        )
        with pytest.raises(ArchiveCorruption, match="verification"):
            compact_journal(path)
        # The original journal is untouched and the torn tmp is gone.
        assert open(path, "rb").read() == original
        assert not os.path.exists(path + ".compact")


class TestAtomicArchiveWrites:
    def test_atomic_write_replaces_or_leaves_old(self, tmp_path):
        target = str(tmp_path / "out.json")
        storageio.atomic_write_text(target, "old")
        plan = faults.FaultPlan(
            seed=2, disk_full_rate=1.0, transient_fraction=0.0
        )
        with faults.injected_faults(plan):
            with pytest.raises(OSError):
                storageio.atomic_write_text(target, "new", key="arch")
        assert open(target).read() == "old"
        storageio.atomic_write_text(target, "new", key="arch")
        assert open(target).read() == "new"

    def test_no_tmp_debris_on_failure(self, tmp_path, monkeypatch):
        target = str(tmp_path / "out.json")

        def failing_fsync(fh, key, attempt=1):
            raise OSError(5, "Input/output error")

        monkeypatch.setattr(storageio, "fsync", failing_fsync)
        with pytest.raises(OSError):
            storageio.atomic_write_text(target, "data")
        assert os.listdir(tmp_path) == []
