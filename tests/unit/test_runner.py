"""Unit tests: the fault-tolerant sweep runner.

Covers the acceptance criteria of the robustness subsystem: parallel ==
serial measurements, byte-identical reports for a seeded fault plan,
kill-mid-sweep + resume == uninterrupted sweep, retry/backoff/quarantine
accounting, and journal corruption recovery.
"""

import json
import os

import pytest

from repro import faults, workloads
from repro.core import Experiment, ExperimentalSetup
from repro.core.errors import ArchiveCorruption
from repro.core.runner import (
    Journal,
    RunnerConfig,
    SweepRunner,
    compact_journal,
    journal_needs_compaction,
    sweep_id,
)

WORKLOAD = "sphinx3"

#: Enough setups to exercise ordering/parallelism, cheap enough for the
#: fast inner loop.
SETUPS = [
    ExperimentalSetup(env_bytes=e) for e in (100, 116, 132, 148, 164, 180)
]

#: Mixed transient + permanent faults across every kind.
NOISY_PLAN = faults.FaultPlan(
    seed=3,
    build_rate=0.2,
    hang_rate=0.4,
    counter_rate=0.2,
    verify_rate=0.3,
    transient_fraction=0.7,
)


def fresh_experiment():
    return Experiment(workloads.get(WORKLOAD))


#: Fault-free sweeps share one experiment: the runner only primes it
#: with genuine measurements, and sharing amortizes the build cost
#: across the module.
_SHARED = {}


def shared_exp():
    if "exp" not in _SHARED:
        _SHARED["exp"] = fresh_experiment()
    return _SHARED["exp"]


def run_sweep(jobs=1, plan=None, journal=None, max_retries=2, exp=None):
    if exp is None:
        exp = shared_exp() if plan is None else fresh_experiment()
    runner = SweepRunner(
        exp,
        RunnerConfig(jobs=jobs, max_retries=max_retries, backoff_base=0.001),
        journal_path=journal,
        fault_plan=plan,
        sleep=lambda s: None,
    )
    return runner.run(SETUPS)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


class TestHappyPath:
    def test_serial_sweep_matches_experiment_sweep(self):
        exp = shared_exp()
        expected = [m.cycles for m in exp.sweep(SETUPS)]
        result = run_sweep(jobs=1)
        assert [m.cycles for m in result.ok] == expected
        assert result.report.complete and result.report.accounted()
        assert result.report.statuses == ["measured"] * len(SETUPS)

    @pytest.mark.slow
    def test_parallel_matches_serial_in_request_order(self):
        serial = run_sweep(jobs=1)
        parallel = run_sweep(jobs=4)
        assert [m.cycles for m in parallel.ok] == [
            m.cycles for m in serial.ok
        ]
        assert [m.setup for m in parallel.ok] == list(SETUPS)

    def test_runner_primes_the_experiment_cache(self):
        exp = fresh_experiment()
        runner = SweepRunner(exp, RunnerConfig(jobs=2))
        result = runner.run(SETUPS)
        # Serial re-runs must be cache hits returning identical objects.
        for setup, measured in zip(SETUPS, result.measurements):
            assert exp.run(setup) is measured


class TestFaultRecovery:
    @pytest.mark.slow
    def test_report_is_byte_identical_across_runs(self):
        a = run_sweep(jobs=1, plan=NOISY_PLAN)
        b = run_sweep(jobs=1, plan=NOISY_PLAN)
        assert a.report.to_json() == b.report.to_json()

    @pytest.mark.slow
    def test_parallel_report_matches_serial_report(self):
        serial = run_sweep(jobs=1, plan=NOISY_PLAN)
        parallel = run_sweep(jobs=3, plan=NOISY_PLAN)
        assert parallel.report.to_json() == serial.report.to_json()

    def test_every_setup_is_accounted_for(self):
        result = run_sweep(jobs=1, plan=NOISY_PLAN)
        rep = result.report
        assert rep.accounted()
        assert rep.requested == len(SETUPS)
        assert rep.quarantined, "noisy plan should quarantine something"
        assert rep.retries > 0, "noisy plan should trigger retries"
        for q in rep.quarantined:
            assert result.measurements[q.index] is None
            assert rep.statuses[q.index] == "quarantined"

    def test_transient_faults_are_retried_to_success(self):
        plan = faults.FaultPlan(
            seed=8,
            hang_rate=1.0,
            transient_fraction=1.0,
            max_transient_attempts=2,
        )
        result = run_sweep(jobs=1, plan=plan, max_retries=3)
        assert result.report.complete
        assert result.report.retries >= len(SETUPS)

    @pytest.mark.slow
    def test_permanent_faults_exhaust_retries_and_quarantine(self):
        plan = faults.FaultPlan(seed=8, verify_rate=1.0, transient_fraction=0.0)
        result = run_sweep(jobs=1, plan=plan, max_retries=1)
        rep = result.report
        assert len(rep.quarantined) == len(SETUPS)
        assert all(q.attempts == 2 for q in rep.quarantined)  # 1 + 1 retry
        assert all(q.fate == "retryable" for q in rep.quarantined)
        assert rep.retries == len(SETUPS)

    def test_fatal_faults_are_not_retried(self):
        # An unverifiable sweep quarantines immediately when the fault
        # is fatal: disable verification faults, inject fatal builds.
        plan = faults.FaultPlan(seed=8, build_rate=1.0, transient_fraction=0.0)
        # Permanent build faults are injected ICEs (retryable=True), so
        # craft fatality via max_retries=0 instead: no retry budget.
        result = run_sweep(jobs=1, plan=plan, max_retries=0)
        rep = result.report
        assert rep.retries == 0
        assert len(rep.quarantined) == len(SETUPS)

    def test_backoff_schedule_is_seeded_and_monotonic(self):
        cfg = RunnerConfig(backoff_base=0.05, backoff_seed=7)
        d2 = cfg.backoff_delay("k", 2)
        d3 = cfg.backoff_delay("k", 3)
        d4 = cfg.backoff_delay("k", 4)
        assert cfg.backoff_delay("k", 1) == 0.0
        assert 0 < d2 < d3 < d4
        assert d2 == RunnerConfig(backoff_base=0.05, backoff_seed=7).backoff_delay("k", 2)


class TestCheckpointResume:
    def _journal(self, tmp_path):
        return str(tmp_path / "sweep.jsonl")

    @pytest.mark.slow
    def test_kill_mid_sweep_then_resume_equals_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        """SIGINT the sweep after half the measurements; the resumed
        sweep must complete without re-measuring and match byte-for-byte
        an uninterrupted sweep."""
        uninterrupted = run_sweep(jobs=1)
        path = self._journal(tmp_path)

        kill_after = len(SETUPS) // 2
        real_append = Journal.append
        appended = {"n": 0}

        def killing_append(self, index, data, fault_key=None):
            real_append(self, index, data, fault_key=fault_key)
            appended["n"] += 1
            if appended["n"] >= kill_after:
                raise KeyboardInterrupt("simulated ctrl-C mid-sweep")

        monkeypatch.setattr(Journal, "append", killing_append)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(jobs=1, journal=path)
        monkeypatch.setattr(Journal, "append", real_append)

        resumed = run_sweep(jobs=1, journal=path)
        rep = resumed.report
        assert rep.resumed == kill_after, "journaled setups were re-measured"
        assert rep.measured == len(SETUPS) - kill_after
        assert rep.complete and rep.accounted()
        assert [m.counters.cycles for m in resumed.ok] == [
            m.counters.cycles for m in uninterrupted.ok
        ]
        assert [m.exit_value for m in resumed.ok] == [
            m.exit_value for m in uninterrupted.ok
        ]

    def test_second_run_resumes_everything(self, tmp_path):
        path = self._journal(tmp_path)
        first = run_sweep(jobs=1, journal=path)
        second = run_sweep(jobs=1, journal=path)
        assert second.report.resumed == len(SETUPS)
        assert second.report.measured == 0
        assert [m.cycles for m in second.ok] == [m.cycles for m in first.ok]
        assert second.report.statuses == ["resumed"] * len(SETUPS)

    def test_torn_final_record_is_dropped_and_remeasured(self, tmp_path):
        path = self._journal(tmp_path)
        run_sweep(jobs=1, journal=path)
        with open(path) as fh:
            lines = fh.read().splitlines()
        # Tear the last measurement record in half, as a crash mid-write
        # would.  (The journal's final line is the sweep's closing
        # metrics snapshot — a mid-sweep crash dies before writing it,
        # so everything after the torn measurement goes too.)
        last = max(i for i, l in enumerate(lines) if '"measurement"' in l)
        with open(path, "w") as fh:
            fh.write("\n".join(lines[:last]) + "\n")
            fh.write(lines[last][: len(lines[last]) // 2])
        result = run_sweep(jobs=1, journal=path)
        assert result.report.resumed == len(SETUPS) - 1
        assert result.report.measured == 1
        assert result.report.complete

    @pytest.mark.slow
    def test_tampered_record_fails_its_checksum(self, tmp_path):
        path = self._journal(tmp_path)
        run_sweep(jobs=1, journal=path)
        with open(path) as fh:
            lines = fh.read().splitlines()
        rec = json.loads(lines[1])
        rec["measurement"]["counters"]["cycles"] += 1.0  # silent lie
        lines[1] = json.dumps(rec)
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        result = run_sweep(jobs=1, journal=path)
        # The tampered record must be rejected and re-measured honestly.
        assert result.report.measured == 1
        assert result.report.complete
        assert [m.cycles for m in result.ok] == [
            m.cycles for m in run_sweep(jobs=1).ok
        ]

    def test_journal_for_a_different_sweep_is_rejected(self, tmp_path):
        path = self._journal(tmp_path)
        run_sweep(jobs=1, journal=path)
        other = SweepRunner(
            fresh_experiment(),
            RunnerConfig(),
            journal_path=path,
        )
        with pytest.raises(ArchiveCorruption, match="different sweep"):
            other.run(SETUPS[:3])  # different setup list, same journal

    def test_sweep_id_pins_workload_and_setups(self):
        a = sweep_id("sphinx3", "test", 0, SETUPS)
        assert a == sweep_id("sphinx3", "test", 0, SETUPS)
        assert a != sweep_id("sphinx3", "test", 0, SETUPS[:-1])
        assert a != sweep_id("mcf", "test", 0, SETUPS)


class TestJournalCompaction:
    def _journal(self, tmp_path):
        return str(tmp_path / "sweep.jsonl")

    def test_multi_resume_journal_compacts_to_one_record_per_setup(
        self, tmp_path
    ):
        path = self._journal(tmp_path)
        baseline = run_sweep(jobs=1, journal=path)
        run_sweep(jobs=1, journal=path)
        run_sweep(jobs=1, journal=path)
        # Three completed runs = one metrics aux record each.
        stats = compact_journal(path)
        assert stats.records_before == len(SETUPS)
        assert stats.records_after == len(SETUPS)
        assert stats.aux_before == 3
        assert stats.aux_after == 1
        assert stats.dropped_corrupt == 0
        with open(path) as fh:
            lines = [l for l in fh.read().splitlines() if l.strip()]
        assert len(lines) == 1 + len(SETUPS) + 1  # header + records + aux
        # Lossless: resume from the compacted journal re-measures nothing.
        resumed = run_sweep(jobs=1, journal=path)
        assert resumed.report.resumed == len(SETUPS)
        assert resumed.report.measured == 0
        assert [m.cycles for m in resumed.ok] == [
            m.cycles for m in baseline.ok
        ]

    def test_compaction_preserves_checksummed_records_verbatim(
        self, tmp_path
    ):
        path = self._journal(tmp_path)
        run_sweep(jobs=1, journal=path)
        with open(path) as fh:
            before = {
                l for l in fh.read().splitlines() if '"measurement"' in l
            }
        compact_journal(path)
        with open(path) as fh:
            after = {
                l for l in fh.read().splitlines() if '"measurement"' in l
            }
        assert after == before  # byte-for-byte, checksums untouched

    def test_needs_compaction_thresholds(self, tmp_path):
        path = self._journal(tmp_path)
        assert not journal_needs_compaction(path, max_records=1)  # no file
        run_sweep(jobs=1, journal=path)
        n_lines = len(SETUPS) + 1  # records + metrics aux
        assert journal_needs_compaction(path, max_records=n_lines - 1)
        assert not journal_needs_compaction(path, max_records=n_lines)
        assert journal_needs_compaction(path, max_bytes=10)
        assert not journal_needs_compaction(
            path, max_bytes=os.path.getsize(path)
        )
        assert not journal_needs_compaction(path)  # no thresholds

    def test_runner_auto_compacts_past_record_threshold(self, tmp_path):
        path = self._journal(tmp_path)
        threshold = len(SETUPS) + 1
        cfg = RunnerConfig(jobs=1, journal_max_records=threshold)
        exp = shared_exp()
        SweepRunner(exp, cfg, journal_path=path).run(SETUPS)
        with open(path) as fh:
            first = len(fh.read().splitlines())
        assert first == 1 + len(SETUPS) + 1  # at threshold: untouched
        SweepRunner(exp, cfg, journal_path=path).run(SETUPS)
        with open(path) as fh:
            second = len(fh.read().splitlines())
        # Second run added an aux record, tripping the threshold; the
        # auto-compaction folded it back to one line per setup + aux.
        assert second == 1 + len(SETUPS) + 1

    def test_compacting_a_non_journal_is_refused(self, tmp_path):
        path = str(tmp_path / "junk.jsonl")
        with open(path, "w") as fh:
            fh.write('{"format": "something-else"}\n')
        with pytest.raises(ArchiveCorruption, match="refusing to compact"):
            compact_journal(path)
        with pytest.raises(ArchiveCorruption, match="does not exist"):
            compact_journal(str(tmp_path / "missing.jsonl"))

    def test_compacting_an_empty_file_is_refused(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        with pytest.raises(ArchiveCorruption, match="empty"):
            compact_journal(path)
        with open(path) as fh:  # refused means untouched
            assert fh.read() == ""

    def test_compacting_a_header_only_journal_is_a_noop(self, tmp_path):
        """A journal from a sweep killed before its first record has a
        header and nothing else; compaction must keep it resumable."""
        from repro.core.runner import JOURNAL_FORMAT

        path = str(tmp_path / "header-only.jsonl")
        header = {"format": JOURNAL_FORMAT, "sweep": "abc", "torn_recovered": 0}
        with open(path, "w") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
        stats = compact_journal(path)
        assert stats.records_before == 0
        assert stats.records_after == 0
        assert stats.dropped_corrupt == 0
        with open(path) as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["sweep"] == "abc"

    def test_compaction_drops_corrupt_lines_and_counts_them(self, tmp_path):
        path = self._journal(tmp_path)
        run_sweep(jobs=1, journal=path)
        with open(path, "a") as fh:
            fh.write('{"index": 0, "measurement"\n')  # torn fragment
        stats = compact_journal(path)
        assert stats.dropped_corrupt == 1
        with open(path) as fh:
            header = json.loads(fh.readline())
        assert header["torn_recovered"] == 1


class TestConfigValidation:
    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            RunnerConfig(jobs=0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RunnerConfig(max_retries=-1)

    def test_hang_timeout_must_exceed_heartbeat_interval(self):
        with pytest.raises(ValueError, match="hang_timeout"):
            RunnerConfig(heartbeat_interval=1.0, hang_timeout=0.5)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            RunnerConfig(heartbeat_interval=0.0)

    def test_bad_respawn_and_compaction_thresholds_rejected(self):
        with pytest.raises(ValueError, match="max_respawns"):
            RunnerConfig(max_respawns=-1)
        with pytest.raises(ValueError, match="journal_max_records"):
            RunnerConfig(journal_max_records=0)
        with pytest.raises(ValueError, match="journal_max_bytes"):
            RunnerConfig(journal_max_bytes=0)

    def test_wall_clock_deadline_raises_run_timeout(self):
        import time

        from repro.core.errors import RunTimeout
        from repro.core.runner import _wall_clock_deadline

        with pytest.raises(RunTimeout, match="wall-clock"):
            with _wall_clock_deadline(0.05):
                time.sleep(1.0)
