"""Unit tests: bias metrics, studies, and setup randomization."""

import pytest

from repro.core.bias import (
    BiasReport,
    detect_bias,
    sample_link_orders,
)
from repro.core.errors import StatsError
from repro.core.randomization import (
    RandomizedEvaluation,
    random_setups,
    required_setup_count,
    speedup_convergence,
)
from repro.core.setup import ExperimentalSetup
from repro.core.stats import t_confidence_interval


class TestBiasReport:
    def test_magnitude(self):
        rep = detect_bias("cycles", [100.0, 110.0, 105.0])
        assert rep.magnitude == pytest.approx(1.1)

    def test_flips_detection(self):
        assert detect_bias("speedup", [0.95, 1.05]).flips
        assert not detect_bias("speedup", [1.01, 1.05]).flips
        assert not detect_bias("speedup", [0.90, 0.99]).flips

    def test_worst_setups_labelled(self):
        rep = detect_bias("speedup", [1.0, 0.8, 1.2], ["a", "b", "c"])
        assert rep.worst_setups() == ("b", "c")

    def test_relative_range(self):
        rep = detect_bias("cycles", [90.0, 100.0, 110.0])
        assert rep.relative_range() == pytest.approx(0.2)

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BiasReport.from_values("x", [1.0, 2.0], ["only-one"])

    def test_summary_line_flags_flips(self):
        assert "FLIPS" in detect_bias("speedup", [0.9, 1.1]).summary_line()
        assert "FLIPS" not in detect_bias("speedup", [1.1, 1.2]).summary_line()


class TestSampleLinkOrders:
    def test_small_sets_enumerated(self):
        orders = sample_link_orders(["a", "b"], count=10)
        assert sorted(orders) == [("a", "b"), ("b", "a")]

    def test_default_order_first(self):
        orders = sample_link_orders(["x", "y", "z"], count=4)
        assert orders[0] == ("x", "y", "z")

    def test_distinct_and_counted(self):
        mods = ["a", "b", "c", "d", "e"]
        orders = sample_link_orders(mods, count=20, seed=1)
        assert len(orders) == 20
        assert len(set(orders)) == 20
        for o in orders:
            assert sorted(o) == mods

    def test_deterministic_per_seed(self):
        mods = ["a", "b", "c", "d"]
        assert sample_link_orders(mods, 8, seed=5) == sample_link_orders(
            mods, 8, seed=5
        )
        assert sample_link_orders(mods, 8, seed=5) != sample_link_orders(
            mods, 8, seed=6
        )


class TestRandomSetups:
    def test_randomizes_only_biased_parameters(self):
        base = ExperimentalSetup(machine="pentium4", compiler="icc", opt_level=3)
        setups = random_setups(base, ["m1", "m2", "m3"], n=10, seed=2)
        assert len(setups) == 10
        for s in setups:
            assert s.machine_name == "pentium4"
            assert s.compiler == "icc"
            assert s.opt_level == 3
            assert s.link_order is not None
            assert s.env_bytes is not None

    def test_env_range_respected(self):
        base = ExperimentalSetup()
        setups = random_setups(base, ["a", "b"], n=50, seed=0, env_range=(200, 300))
        assert all(200 <= s.env_bytes < 300 for s in setups)

    def test_bad_env_range_rejected(self):
        with pytest.raises(ValueError):
            random_setups(ExperimentalSetup(), ["a"], n=2, env_range=(300, 200))

    def test_setups_vary(self):
        setups = random_setups(ExperimentalSetup(), ["a", "b", "c"], n=12, seed=0)
        assert len({s.env_bytes for s in setups}) > 1
        assert len({s.link_order for s in setups}) > 1


SPEEDUPS = [1.02, 1.10, 0.97, 1.15, 1.04, 1.08, 0.99, 1.21, 1.05, 1.11]


class TestConvergenceHelpers:
    """The F8 convergence helpers: the curve and the projection."""

    def test_convergence_curve_covers_every_prefix(self):
        curve = speedup_convergence(SPEEDUPS)
        assert [n for n, __ in curve] == list(range(2, len(SPEEDUPS) + 1))
        assert all(rel >= 0.0 for __, rel in curve)

    def test_empty_and_singleton_samples_raise(self):
        with pytest.raises(StatsError):
            speedup_convergence([])
        with pytest.raises(StatsError):
            speedup_convergence([1.05])
        with pytest.raises(StatsError):
            required_setup_count([])
        with pytest.raises(StatsError):
            required_setup_count([1.05])

    def test_all_identical_samples_are_converged(self):
        # Zero dispersion: nothing left to narrow, at any prefix.
        flat = [1.07] * 5
        assert speedup_convergence(flat) == [(n, 0.0) for n in range(2, 6)]
        est = required_setup_count(flat)
        assert est.converged
        assert est.recommended_n == 5

    def test_level_edge_values_raise(self):
        for level in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(StatsError):
                speedup_convergence(SPEEDUPS, level=level)
            with pytest.raises(StatsError):
                required_setup_count(SPEEDUPS, level=level)

    def test_projection_exceeds_observed_until_target_met(self):
        est = required_setup_count(SPEEDUPS, target_rel_width=0.01)
        assert not est.converged
        assert est.recommended_n > len(SPEEDUPS)
        loose = required_setup_count(SPEEDUPS, target_rel_width=0.5)
        assert loose.converged
        assert loose.recommended_n == len(SPEEDUPS)


class TestRandomizedEvaluationInference:
    def evaluation(self, speedups, setups=None):
        if setups is None:
            setups = [
                ExperimentalSetup(env_bytes=100 + 8 * i)
                for i in range(len(speedups))
            ]
        return RandomizedEvaluation(
            speedups=tuple(speedups),
            interval=t_confidence_interval(speedups),
            setups=tuple(setups),
        )

    def test_distinct_setups_counts_unique_setups(self):
        ev = self.evaluation(SPEEDUPS)
        assert ev.distinct_setups == len(SPEEDUPS)
        shared = [ExperimentalSetup(env_bytes=100)] * len(SPEEDUPS)
        assert self.evaluation(SPEEDUPS, shared).distinct_setups == 1

    def test_analysis_work_up_reuses_the_sample(self):
        ev = self.evaluation(SPEEDUPS)
        a = ev.analysis(seed=3)
        assert a.n == len(SPEEDUPS)
        assert a.distinct_setups == ev.distinct_setups
        assert list(a.speedups) == list(ev.speedups)
        assert a.level == ev.interval.level

    def test_analysis_raises_on_degenerate_sample(self):
        # t_confidence_interval itself refuses zero-variance samples, so
        # build the evaluation with a healthy interval but an
        # all-identical speedup tuple: the work-up must still refuse.
        flat = (1.05, 1.05, 1.05)
        ev = RandomizedEvaluation(
            speedups=flat,
            interval=t_confidence_interval(SPEEDUPS),
            setups=tuple(
                ExperimentalSetup(env_bytes=100 + 8 * i) for i in range(3)
            ),
        )
        with pytest.raises(StatsError):
            ev.analysis()
