"""Unit tests: the performance-telemetry subsystem.

Covers the perf PR's acceptance criteria: folded flamegraph weights sum
*exactly* to the engine's cycle counter (integer centicycles, no
tolerance), the flame-diff culprit names the same function as
``analysis.profilediff``, deterministic 1-in-N trace sampling leaves
canonical reports byte-identical (serial == parallel == sampled),
timeline JSONL round-trips through the inspector and validator, engine
self-profiling snapshots into the ``perf`` manifest section, histogram
fixed-bin quantiles, and ``pc_profile_diff`` edge cases (empty,
mismatched-length, all-zero profiles).
"""

import json

import pytest

from repro import workloads
from repro.analysis import pc_profile_diff, profile_diff
from repro.arch.counters import PerfCounters, RunResult
from repro.core import Experiment, ExperimentalSetup
from repro.core.runner import RunnerConfig, SweepRunner
from repro.obs import flame as obs_flame
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs import trace as obs_trace
from repro.obs.inspect import is_timeline, load_json_artifact

WORKLOAD = "sphinx3"

BASE = ExperimentalSetup(env_bytes=100)
SHIFTED = ExperimentalSetup(env_bytes=1040)

SETUPS = [ExperimentalSetup(env_bytes=e) for e in (100, 116, 132, 148)]


@pytest.fixture(autouse=True)
def _clean_perf_state():
    obs_perf.disable_engine_profiling()
    obs_trace.install(None)
    yield
    obs_perf.disable_engine_profiling()
    obs_trace.install(None)


_SHARED = {}


def shared_exp() -> Experiment:
    if "exp" not in _SHARED:
        _SHARED["exp"] = Experiment(workloads.get(WORKLOAD))
    return _SHARED["exp"]


def shared_flame(setup):
    """Per-PC profiles are uncached by design; share them across tests."""
    if setup not in _SHARED.setdefault("flame", {}):
        _SHARED["flame"][setup] = obs_flame.profile_flame(shared_exp(), setup)
    return _SHARED["flame"][setup]


# -- flamegraph folding -----------------------------------------------------


class TestFlameFold:
    def test_folded_weights_sum_exactly_to_engine_cycles(self):
        frames, result = shared_flame(BASE)
        assert obs_flame.validate_fold(frames, result.counters.cycles) == []
        assert obs_flame.total_centicycles(frames) == int(
            round(result.counters.cycles * 100)
        )

    def test_folded_lines_parse_and_preserve_the_sum(self):
        frames, result = shared_flame(BASE)
        lines = obs_flame.folded_lines(frames)
        assert lines == sorted(lines)
        total = 0
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert ";" in stack
            total += int(weight)
        assert total == int(round(result.counters.cycles * 100))

    def test_flame_tree_is_a_partition_at_every_level(self):
        frames, result = shared_flame(BASE)
        tree = obs_flame.flame_tree(frames)
        assert tree["unit"] == "centicycles"
        assert tree["value"] == int(round(result.counters.cycles * 100))
        assert tree["value"] == sum(c["value"] for c in tree["children"])
        for module in tree["children"]:
            assert module["value"] == sum(
                f["value"] for f in module["children"]
            )

    def test_mismatched_profile_length_is_loud(self):
        exe = shared_exp().build(BASE)
        with pytest.raises(ValueError, match="do not match"):
            obs_flame.fold_pc_cycles(exe, [0.0] * (exe.num_instructions() + 1))

    def test_validate_fold_flags_bad_partitions(self):
        frames = [
            obs_flame.FlameFrame("m1", "f", 50),
            obs_flame.FlameFrame("m2", "f", -10),
        ]
        problems = " ".join(obs_flame.validate_fold(frames, 1.0))
        assert "not a partition" in problems
        assert "appears in both" in problems
        assert "negative weight" in problems

    def test_flame_diff_culprit_matches_profilediff(self):
        exp = shared_exp()
        frames_a, _ = shared_flame(BASE)
        frames_b, _ = shared_flame(SHIFTED)
        deltas = obs_flame.diff(frames_a, frames_b)
        expected = profile_diff(exp, BASE, SHIFTED).culprit()
        assert deltas[0].function == expected.function
        assert deltas[0].delta_cycles == pytest.approx(
            expected.delta, abs=0.005
        )

    def test_diff_covers_functions_missing_on_either_side(self):
        a = [obs_flame.FlameFrame("m", "only_a", 100)]
        b = [obs_flame.FlameFrame("m", "only_b", 40)]
        deltas = obs_flame.diff(a, b)
        assert [(d.function, d.delta_centicycles) for d in deltas] == [
            ("only_a", -100),
            ("only_b", 40),
        ]

    def test_fold_trace_attributes_self_time(self):
        data = {
            "traceEvents": [
                {"ph": "X", "dur": 100.0, "args": {"path": "sweep#0"}},
                {"ph": "X", "dur": 60.0, "args": {"path": "sweep#0/run#0"}},
                {"ph": "X", "dur": 30.0, "args": {"path": "sweep#0/run#1"}},
                {"ph": "M", "name": "ignored"},
            ]
        }
        assert obs_flame.fold_trace(data) == [
            "sweep#0 10",
            "sweep#0;run#0 60",
            "sweep#0;run#1 30",
        ]


# -- engine self-profiling --------------------------------------------------


class TestEngineProfiling:
    def test_disabled_by_default_and_snapshot_is_none(self):
        assert not obs_perf.engine_profiling_enabled()
        assert obs_perf.snapshot() is None

    def test_profile_accumulates_across_runs_and_snapshots(self):
        prof = obs_perf.enable_engine_profiling()
        assert obs_perf.enable_engine_profiling() is prof  # idempotent
        exp = Experiment(workloads.get(WORKLOAD))
        exp.run(BASE)
        snap = obs_perf.snapshot()
        assert snap is not None
        eng = snap["engine"]
        assert eng["runs"] == 1
        assert sum(eng["opcode_classes"].values()) > 0
        assert eng["blocks"]["dynamic_entries"] > 0
        assert eng["blocks"]["replay_ratio"] > 1.0
        obs_perf.disable_engine_profiling()
        assert obs_perf.snapshot() is None

    def test_env_flag_arms_profiling_lazily(self, monkeypatch):
        monkeypatch.setenv(obs_perf.ENGINE_PROFILE_ENV, "1")
        assert obs_perf.engine_profiling_enabled()
        monkeypatch.setenv(obs_perf.ENGINE_PROFILE_ENV, "0")
        obs_perf.disable_engine_profiling()
        assert not obs_perf.engine_profiling_enabled()

    def test_manifest_carries_the_perf_section(self):
        obs_perf.enable_engine_profiling()
        Experiment(workloads.get(WORKLOAD)).run(BASE)
        m = obs_manifest.build_manifest(
            experiment=shared_exp(),
            setups=SETUPS,
            runner_config=RunnerConfig(trace_sample=3),
            perf=obs_perf.snapshot(),
        )
        assert obs_manifest.validate_manifest(m) == []
        assert m["perf"]["engine"]["runs"] >= 1
        assert m["runner"]["trace_sample"] == 3
        bad = dict(m, perf={"engine": "nope"})
        assert obs_manifest.validate_manifest(bad) != []


# -- deterministic trace sampling -------------------------------------------


class TestTraceSampling:
    def test_rate_one_keeps_everything(self):
        assert all(obs_perf.trace_sampled(f"k{i}", 1) for i in range(50))

    def test_draw_is_deterministic_and_roughly_one_in_n(self):
        keys = [f"setup-{i}" for i in range(400)]
        first = [obs_perf.trace_sampled(k, 4) for k in keys]
        second = [obs_perf.trace_sampled(k, 4) for k in keys]
        assert first == second
        kept = sum(first)
        assert 50 <= kept <= 150  # ~100 expected; loose deterministic bound

    def test_sampled_sweep_keeps_fewer_setup_spans(self):
        def setup_spans(rate):
            tracer = obs_trace.Tracer(label="t")
            with obs_trace.tracing(tracer):
                SweepRunner(
                    shared_exp(), RunnerConfig(trace_sample=rate)
                ).run(SETUPS)
            return [
                s.attrs.get("index")
                for s in tracer.spans
                if s.name == "setup"
            ]

        full = setup_spans(1)
        sampled = setup_spans(3)
        assert full == list(range(len(SETUPS)))
        assert set(sampled) < set(full)

    def test_reports_are_byte_identical_serial_parallel_sampled(self):
        def report_json(jobs, rate):
            return (
                SweepRunner(
                    shared_exp(),
                    RunnerConfig(jobs=jobs, trace_sample=rate),
                )
                .run(SETUPS)
                .report.to_json()
            )

        serial = report_json(1, 1)
        assert report_json(1, 5) == serial
        assert report_json(2, 5) == serial


# -- metrics timeseries -----------------------------------------------------


class TestTimeline:
    def record(self, tmp_path, samples):
        path = str(tmp_path / "timeline.jsonl")
        feed = iter(samples)
        recorder = obs_perf.TimelineRecorder(path, interval=0.01)
        recorder.start(lambda: next(feed))
        import time as _time

        _time.sleep(0.05)
        recorder.stop()
        return path, recorder

    def test_recorder_streams_valid_jsonl(self, tmp_path):
        path, recorder = self.record(
            tmp_path, [{"measured": i, "requested": 9} for i in range(100)]
        )
        data = load_json_artifact(path)
        assert is_timeline(data)
        assert obs_perf.validate_timeline(data) == []
        samples = obs_perf.timeline_samples(data)
        assert samples, "expected at least the closing sample"
        assert samples == list(recorder.samples)[-len(samples):]
        ts = [s["t"] for s in samples]
        assert ts == sorted(ts)
        assert "timeline" in obs_perf.summarize_timeline(data)

    def test_sampler_errors_are_counted_not_raised(self, tmp_path):
        path = str(tmp_path / "tl.jsonl")
        recorder = obs_perf.TimelineRecorder(path, interval=0.01)

        def boom():
            raise RuntimeError("sampler exploded")

        recorder.start(boom)
        import time as _time

        _time.sleep(0.03)
        recorder.stop()
        assert recorder.sample_errors > 0
        assert obs_perf.validate_timeline(load_json_artifact(path)) == []

    def test_validator_rejects_malformed_timelines(self):
        bad = {
            "timeline": {
                "path": "x",
                "header": {"format": "nope", "interval": 0},
                "lines": [
                    "not json",
                    '{"t": 2.0, "measured": 1}',
                    '{"t": 1.0, "measured": "much"}',
                    '{"measured": 3}',
                ],
            }
        }
        problems = " ".join(obs_perf.validate_timeline(bad))
        assert "expected" in problems
        assert "interval" in problems
        assert "not valid JSON" in problems
        assert "goes backwards" in problems
        assert "not a number" in problems
        assert "lacks a numeric 't'" in problems

    def test_sweep_writes_a_timeline_next_to_the_journal(self, tmp_path):
        path = str(tmp_path / "sweep-timeline.jsonl")
        SweepRunner(
            shared_exp(),
            RunnerConfig(timeline_interval=0.01),
            timeline_path=path,
        ).run(SETUPS)
        data = load_json_artifact(path)
        assert obs_perf.validate_timeline(data) == []
        final = obs_perf.timeline_samples(data)[-1]
        assert final["measured"] + final["resumed"] == len(SETUPS)
        assert final["requested"] == len(SETUPS)
        assert final["pending"] == 0


# -- histogram quantiles ----------------------------------------------------


class TestHistogramQuantiles:
    def test_quantiles_are_deterministic_and_bin_accurate(self):
        h = obs_metrics.Histogram("h")
        values = [0.1 * i for i in range(1, 101)]
        h.extend(values)
        # Bin width is ~9%, clamped to the observed range.
        assert h.quantile(0.0) == pytest.approx(0.1, rel=0.1)
        assert h.quantile(0.5) == pytest.approx(5.0, rel=0.1)
        assert h.quantile(0.95) == pytest.approx(9.5, rel=0.1)
        assert h.quantile(1.0) == 10.0
        h2 = obs_metrics.Histogram("h2")
        h2.extend(values)
        assert h2.summary() == h.summary()

    def test_identical_window_is_exact_and_rolls(self):
        h = obs_metrics.Histogram("w", window=4)
        h.extend([100.0] * 8)
        assert len(h) == 4
        assert h.quantile(0.95) == 100.0
        h.extend([1.0] * 4)  # evict every 100
        assert h.samples == (1.0, 1.0, 1.0, 1.0)
        assert h.quantile(0.95) == 1.0

    def test_quantile_rejects_bad_fractions_and_handles_empty(self):
        h = obs_metrics.Histogram("e")
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)


# -- pc_profile_diff edge cases ---------------------------------------------


def _fake_result(pc_cycles, cycles=None):
    total = sum(pc_cycles) if cycles is None else cycles
    return RunResult(
        exit_value=0,
        counters=PerfCounters(cycles=total, instructions=max(1, len(pc_cycles))),
        pc_cycles=tuple(pc_cycles),
    )


class TestPCProfileDiffEdges:
    def test_mismatched_profile_lengths_raise(self, monkeypatch):
        exp = shared_exp()
        results = iter(
            [_fake_result([1.0, 2.0]), _fake_result([1.0, 2.0, 3.0])]
        )
        monkeypatch.setattr(
            Experiment, "profile", lambda self, *a, **kw: next(results)
        )
        with pytest.raises(ValueError, match="differ in length"):
            pc_profile_diff(exp, BASE, ExperimentalSetup(env_bytes=116))

    def test_empty_profiles_diff_to_nothing(self, monkeypatch):
        exp = shared_exp()
        monkeypatch.setattr(
            Experiment,
            "profile",
            lambda self, *a, **kw: _fake_result([], cycles=5.0),
        )
        monkeypatch.setattr(Experiment, "build", lambda self, setup: _FAKE_EXE)
        d = pc_profile_diff(exp, BASE, ExperimentalSetup(env_bytes=116))
        assert d.pcs == ()
        assert d.total_delta == 0.0
        assert d.by_function() == {}

    def test_all_zero_profiles_are_filtered_out(self, monkeypatch):
        exp = shared_exp()
        monkeypatch.setattr(
            Experiment,
            "profile",
            lambda self, *a, **kw: _fake_result([0.0, 0.0], cycles=1.0),
        )
        monkeypatch.setattr(Experiment, "build", lambda self, setup: _FAKE_EXE)
        d = pc_profile_diff(exp, BASE, ExperimentalSetup(env_bytes=116))
        assert d.pcs == ()
        assert d.ranked() == []

    def test_real_diff_still_localizes_the_env_bias(self):
        exp = shared_exp()
        d = pc_profile_diff(exp, BASE, SHIFTED)
        assert d.pcs, "expected nonzero per-PC deltas"
        agg = d.by_function()
        expected = profile_diff(exp, BASE, SHIFTED).culprit()
        top = max(agg, key=lambda fn: abs(agg[fn]))
        assert top == expected.function


class _FakePlaced:
    def __init__(self, name, start, end):
        self.name = name
        self.module = "m"
        self.flat_start = start
        self.flat_end = end


class _FakeExe:
    ops = [None, None]
    addrs = [0, 4]
    placed = [_FakePlaced("f", 0, 2)]


_FAKE_EXE = _FakeExe()
