"""Unit tests: the minic pretty-printer."""

import pytest

from repro.toolchain.astprint import format_expr, format_unit
from repro.toolchain.parser import parse_source

from tests.conftest import SMALL_SOURCES, run_main


def roundtrip(source: str) -> str:
    return format_unit(parse_source(source))


class TestExpressions:
    def _fmt(self, text):
        unit = parse_source(f"int a; int b; int c; func f() {{ return {text}; }}")
        return format_expr(unit.funcs[0].body.stmts[0].value)

    def test_minimal_parentheses(self):
        assert self._fmt("a + b * c") == "a + b * c"
        assert self._fmt("(a + b) * c") == "(a + b) * c"

    def test_left_associativity_preserved(self):
        assert self._fmt("a - b - c") == "a - b - c"
        assert self._fmt("a - (b - c)") == "a - (b - c)"

    def test_unary_canonicalized(self):
        # minic has no negative literals; unary minus round-trips via 0-x
        # at subtraction's precedence (no redundant parens at top level).
        assert self._fmt("-a") == "0 - a"
        assert self._fmt("-a * b") == "(0 - a) * b"
        assert self._fmt("!a") == "!a"
        assert self._fmt("~(a + b)") == "~(a + b)"

    def test_calls_and_indexing(self):
        assert self._fmt("g(a, b + 1)") == "g(a, b + 1)"
        unit = parse_source("int t[4]; func f() { return t[2 + 1]; }")
        assert format_expr(unit.funcs[0].body.stmts[0].value) == "t[2 + 1]"

    def test_addrof(self):
        unit = parse_source("int t[4]; func f() { return peek(&t); }")
        assert format_expr(unit.funcs[0].body.stmts[0].value) == "peek(&t)"


class TestUnits:
    def test_globals_rendered(self):
        out = roundtrip("int g = 5; byte b[4]; int a[2] = {1, -2};")
        assert "int g = 5;" in out
        assert "byte b[4];" in out
        assert "int a[2] = {1, -2};" in out

    def test_statements_rendered(self):
        src = """
        func f(n) {
            var i; var s;
            s = 0;
            for (i = 0; i < n; i = i + 1) {
                if (i & 1) { continue; } else { s = s + i; }
                while (s > 100) { s = s - 100; break; }
            }
            return s;
        }
        """
        out = roundtrip(src)
        for fragment in ("for (i = 0;", "continue;", "break;", "} else {"):
            assert fragment in out

    def test_fixpoint_after_one_print(self):
        # print∘parse is idempotent from the first rendering.
        for src in SMALL_SOURCES.values():
            once = roundtrip(src)
            twice = roundtrip(once)
            assert once == twice

    def test_printed_source_reparses(self):
        for src in SMALL_SOURCES.values():
            parse_source(roundtrip(src))  # must not raise

    @pytest.mark.parametrize(
        "src,expected",
        [
            (
                "func main() { return 2 + 3 * 4; }",
                14,
            ),
            (
                "int a[4]; func main() { a[1] = 7; return a[1] - -3; }",
                10,
            ),
            (
                "func main() { var i; var s; s = 0; "
                "for (i = 0; i < 5; i = i + 1) { s = s + i; } return s; }",
                10,
            ),
        ],
    )
    def test_semantics_preserved_through_printing(self, src, expected):
        assert run_main(src) == expected
        assert run_main(roundtrip(src)) == expected

    def test_workload_sources_roundtrip(self):
        from repro import workloads

        for wl in workloads.suite():
            for name, src in wl.sources.items():
                printed = roundtrip(src)
                assert roundtrip(printed) == printed, f"{wl.name}:{name}"
