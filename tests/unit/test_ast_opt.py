"""Unit tests: AST-level transforms (inlining, unrolling, call extraction).

Structural checks plus semantics-preservation checks through execution.
"""

from repro.toolchain import ast
from repro.toolchain.opt.inline import inline_calls
from repro.toolchain.opt.unroll import unroll_loops
from repro.toolchain.parser import parse_source

from tests.conftest import run_main


def count_calls(unit, name):
    total = 0
    for func in unit.funcs:
        for stmt in ast.walk_stmts(func.body):
            for top in ast.stmt_exprs(stmt):
                for e in ast.walk_exprs(top):
                    if isinstance(e, ast.Call) and e.name == name:
                        total += 1
    return total


SMALL_CALLEE = """
func double(x) { return x + x; }
func main() {
    var a;
    a = double(21);
    return a;
}
"""


class TestInlining:
    def test_statement_call_inlined(self):
        unit = parse_source(SMALL_CALLEE)
        assert inline_calls(unit, threshold=8) == 1
        assert count_calls(unit, "double") == 0

    def test_threshold_zero_disables(self):
        unit = parse_source(SMALL_CALLEE)
        assert inline_calls(unit, threshold=0) == 0
        assert count_calls(unit, "double") == 1

    def test_big_callee_not_inlined(self):
        body = "\n".join(f"x = x + {i};" for i in range(30))
        src = f"func f(x) {{ {body} return x; }} func main() {{ return f(1); }}"
        unit = parse_source(src)
        assert inline_calls(unit, threshold=8) == 0

    def test_recursive_callee_not_inlined(self):
        src = """
        func f(n) { if (n < 1) { return 0; } return f(n - 1); }
        func main() { return f(3); }
        """
        unit = parse_source(src)
        inline_calls(unit, threshold=50)
        assert count_calls(unit, "f") >= 1  # at least the recursive site

    def test_early_return_callee_not_inlined(self):
        src = """
        func f(x) { if (x) { return 1; } return 2; }
        func main() { return f(0); }
        """
        unit = parse_source(src)
        assert inline_calls(unit, threshold=50) == 0

    def test_nested_call_extracted_and_inlined(self):
        src = """
        func half(x) { return x / 2; }
        func main() { return 1 + half(84); }
        """
        unit = parse_source(src)
        assert inline_calls(unit, threshold=8) == 1
        assert count_calls(unit, "half") == 0

    def test_inlining_preserves_semantics(self):
        src = """
        func mix(a, b) { return a * 10 + b; }
        func main() {
            var s; var i;
            s = 0;
            for (i = 0; i < 5; i = i + 1) {
                s = s + mix(i, i + 1);
            }
            return s;
        }
        """
        assert run_main(src, opt_level=0) == run_main(src, opt_level=3)

    def test_short_circuit_rhs_not_extracted(self):
        # Inlining must not hoist a call out of a short-circuited operand.
        src = """
        int hits;
        func bump() { hits = hits + 1; return 1; }
        func main() {
            var r;
            r = 0 && bump();
            return hits;
        }
        """
        for level in (0, 2, 3):
            assert run_main(src, opt_level=level) == 0

    def test_renaming_avoids_capture(self):
        src = """
        func f(x) { var t; t = x * 2; return t; }
        func main() {
            var t; var r;
            t = 100;
            r = f(3);
            return t + r;
        }
        """
        assert run_main(src, opt_level=3) == 106


UNROLLABLE = """
int a[64];
func main() {
    var i; var s;
    for (i = 0; i < 64; i = i + 1) { a[i] = i; }
    s = 0;
    for (i = 0; i < 64; i = i + 1) { s = s + a[i]; }
    return s;
}
"""


class TestUnrolling:
    def test_for_loop_unrolled(self):
        unit = parse_source(UNROLLABLE)
        assert unroll_loops(unit, factor=4) == 2

    def test_factor_one_disables(self):
        unit = parse_source(UNROLLABLE)
        assert unroll_loops(unit, factor=1) == 0

    def test_semantics_preserved_all_trip_counts(self):
        # Exercise remainder handling: trip counts around the factor.
        for n in (0, 1, 3, 4, 5, 7, 8, 9):
            src = f"""
            func main() {{
                var i; var s;
                s = 0;
                for (i = 0; i < {n}; i = i + 1) {{ s = s + i * i; }}
                return s;
            }}
            """
            expected = sum(i * i for i in range(n))
            assert run_main(src, opt_level=3) == expected, n

    def test_le_bound_supported(self):
        src = """
        func main() {
            var i; var s;
            s = 0;
            for (i = 1; i <= 10; i = i + 1) { s = s + i; }
            return s;
        }
        """
        unit = parse_source(src)
        assert unroll_loops(unit, factor=4) == 1
        assert run_main(src, opt_level=3) == 55

    def test_step_two(self):
        src = """
        func main() {
            var i; var s;
            s = 0;
            for (i = 0; i < 20; i = i + 2) { s = s + i; }
            return s;
        }
        """
        assert run_main(src, opt_level=3) == sum(range(0, 20, 2))

    def test_break_blocks_unrolling(self):
        src = """
        func main() {
            var i; var s;
            s = 0;
            for (i = 0; i < 10; i = i + 1) {
                if (i == 3) { break; }
                s = s + 1;
            }
            return s;
        }
        """
        unit = parse_source(src)
        assert unroll_loops(unit, factor=4) == 0
        assert run_main(src, opt_level=3) == 3

    def test_induction_var_assignment_blocks_unrolling(self):
        src = """
        func main() {
            var i; var s;
            s = 0;
            for (i = 0; i < 10; i = i + 1) {
                i = i + 1;
                s = s + 1;
            }
            return s;
        }
        """
        unit = parse_source(src)
        assert unroll_loops(unit, factor=4) == 0

    def test_vardecl_in_body_blocks_unrolling(self):
        src = """
        func main() {
            var i; var s;
            s = 0;
            for (i = 0; i < 8; i = i + 1) { var t; t = i; s = s + t; }
            return s;
        }
        """
        unit = parse_source(src)
        assert unroll_loops(unit, factor=4) == 0

    def test_only_innermost_unrolled(self):
        src = """
        int a[16];
        func main() {
            var i; var j; var s;
            s = 0;
            for (i = 0; i < 4; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) {
                    s = s + a[i * 4 + j] + 1;
                }
            }
            return s;
        }
        """
        unit = parse_source(src)
        assert unroll_loops(unit, factor=4) == 1  # inner only

    def test_bound_variable_assigned_in_body_blocks_unrolling(self):
        src = """
        func main() {
            var i; var n; var s;
            n = 10; s = 0;
            for (i = 0; i < n; i = i + 1) {
                n = n - 1;
                s = s + 1;
            }
            return s;
        }
        """
        unit = parse_source(src)
        assert unroll_loops(unit, factor=4) == 0
        assert run_main(src, opt_level=3) == 5
