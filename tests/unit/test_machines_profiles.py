"""Unit tests: machine presets and compiler profiles."""

import pytest

from repro.arch import available_machines, core2, get_machine, m5_o3cpu, pentium4
from repro.toolchain.profiles import (
    GCC,
    ICC,
    CompilerProfile,
    available_profiles,
    get_profile,
)


class TestMachinePresets:
    def test_three_paper_platforms(self):
        assert set(available_machines()) == {"core2", "pentium4", "m5_o3cpu"}

    def test_lookup_matches_constructors(self):
        assert get_machine("core2") == core2()
        assert get_machine("pentium4") == pentium4()
        assert get_machine("m5_o3cpu") == m5_o3cpu()

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError):
            get_machine("zen4")

    def test_paper_relevant_relationships(self):
        c2, p4, m5 = core2(), pentium4(), m5_o3cpu()
        # The deep P4 pipeline pays far more per mispredict.
        assert p4.mispredict_cycles > 1.5 * c2.mispredict_cycles
        # Only Core 2 has the loop stream detector.
        assert c2.has_lsd and not p4.has_lsd and not m5.has_lsd
        # The P4 trace cache makes it insensitive to window straddles.
        assert p4.straddle_cycles == 0.0 and c2.straddle_cycles > 0
        # P4 unaligned accesses are notoriously expensive.
        assert p4.unaligned_cycles > c2.unaligned_cycles

    def test_with_overrides(self):
        cfg = core2().with_overrides(has_lsd=False, mispredict_cycles=20.0)
        assert not cfg.has_lsd
        assert cfg.mispredict_cycles == 20.0
        assert core2().has_lsd  # original untouched

    def test_build_returns_fresh_state(self):
        cfg = core2()
        m1, m2 = cfg.build(), cfg.build()
        m1.hierarchy.l1d.access_line(1)
        assert m2.hierarchy.l1d.misses == 0

    def test_summary_fields(self):
        s = core2().summary()
        assert s["machine"] == "core2"
        assert "L1D" in s and "branch predictor" in s

    def test_configs_hashable_for_setups(self):
        assert hash(core2()) == hash(core2())


class TestCompilerProfiles:
    def test_two_vendors(self):
        assert available_profiles() == ("gcc", "icc")

    def test_lookup(self):
        assert get_profile("gcc") is GCC
        assert get_profile("icc") is ICC
        with pytest.raises(KeyError):
            get_profile("msvc")

    def test_builtin_profiles_valid(self):
        GCC.validate()
        ICC.validate()

    def test_levels_monotone_in_aggressiveness(self):
        for prof in (GCC, ICC):
            assert list(prof.inline_threshold) == sorted(prof.inline_threshold)
            assert list(prof.unroll_factor) == sorted(prof.unroll_factor)
            assert prof.inline_threshold[0] == 0  # O0 never inlines
            assert prof.unroll_factor[0] == 1  # O0 never unrolls

    def test_vendor_differences_are_the_modelled_ones(self):
        # icc inlines more, unrolls earlier, aligns loops; gcc does not.
        assert ICC.inline_threshold[3] > GCC.inline_threshold[3]
        assert ICC.unroll_factor[2] > GCC.unroll_factor[2]
        assert ICC.loop_alignment[2] > 1 and GCC.loop_alignment[2] == 1

    def test_register_budget_enforced(self):
        bad = CompilerProfile(
            name="bad",
            inline_threshold=(0, 0, 0, 0),
            unroll_factor=(1, 1, 1, 1),
            promote_registers=(5, 5, 5, 5),
            cache_global_bases=(3, 3, 3, 3),
            schedule=(False,) * 4,
            loop_alignment=(1,) * 4,
        )
        with pytest.raises(ValueError, match="callee-saved"):
            bad.validate()

    def test_bad_unroll_rejected(self):
        bad = CompilerProfile(
            name="bad",
            inline_threshold=(0, 0, 0, 0),
            unroll_factor=(0, 1, 1, 1),
            promote_registers=(0,) * 4,
            cache_global_bases=(0,) * 4,
            schedule=(False,) * 4,
            loop_alignment=(1,) * 4,
        )
        with pytest.raises(ValueError, match="unroll"):
            bad.validate()
