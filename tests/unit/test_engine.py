"""Unit tests: execution engine (timing model observability + traps)."""

import pytest

from repro.arch import SimulationError, compute_lsd_eligible, execute, get_machine
from repro.os import Environment, load_process

from tests.conftest import build_small, compile_single, run_exe, SMALL_EXPECTED


class TestExecution:
    def test_small_program_result(self, small_exe_o2):
        res = run_exe(small_exe_o2)
        assert res.exit_value == SMALL_EXPECTED

    def test_counters_consistent(self, small_exe_o2):
        c = run_exe(small_exe_o2).counters
        assert c.instructions > 0
        assert c.cycles > c.instructions * 0.3  # at least issue cost
        assert c.mispredicts <= c.branches
        assert c.taken_branches <= c.branches
        assert c.calls == c.returns + 0  # every call returns (then HALT)

    def test_deterministic(self, small_exe_o2):
        a = run_exe(small_exe_o2)
        b = run_exe(small_exe_o2)
        assert a.counters.cycles == b.counters.cycles
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_machines_differ_in_cycles_not_results(self, small_exe_o2):
        results = {
            m: run_exe(small_exe_o2, machine=m)
            for m in ("core2", "pentium4", "m5_o3cpu")
        }
        exits = {r.exit_value for r in results.values()}
        assert exits == {SMALL_EXPECTED}
        cycles = {round(r.counters.cycles, 3) for r in results.values()}
        assert len(cycles) == 3  # timing models genuinely differ

    def test_env_size_changes_cycles_not_result(self, small_exe_o2):
        a = run_exe(small_exe_o2, env=Environment.of_size(100))
        b = run_exe(small_exe_o2, env=Environment.of_size(104))
        assert a.exit_value == b.exit_value
        assert a.counters.cycles != b.counters.cycles

    def test_aligned_stack_has_no_unaligned_accesses(self, small_exe_o2):
        res = run_exe(small_exe_o2, env=Environment.of_size(104))
        # env 104 + fixed argv/vector puts sp on an 8-byte boundary here.
        sp_misaligned = run_exe(small_exe_o2, env=Environment.of_size(100))
        assert res.counters.unaligned_accesses == 0
        assert sp_misaligned.counters.unaligned_accesses > 0

    def test_function_profiling(self, small_exe_o2):
        img = load_process(small_exe_o2, Environment.typical())
        res = execute(
            img, get_machine("core2").build(), profile_functions=True
        )
        assert res.function_cycles
        assert (
            pytest.approx(sum(res.function_cycles.values()), rel=1e-9)
            == res.counters.cycles
        )
        assert res.function_cycles["total"] > res.function_cycles["_start"]


class TestTraps:
    def test_division_by_zero_traps(self):
        exe = compile_single(
            "int z; func main() { return 5 / z; }", opt_level=0
        )
        with pytest.raises(SimulationError, match="division by zero"):
            run_exe(exe)

    def test_modulo_by_zero_traps(self):
        exe = compile_single(
            "int z; func main() { return 5 % z; }", opt_level=0
        )
        with pytest.raises(SimulationError, match="modulo by zero"):
            run_exe(exe)

    def test_runaway_loop_detected(self):
        exe = compile_single("func main() { while (1) { } return 0; }")
        img = load_process(exe, Environment.typical())
        with pytest.raises(SimulationError, match="runaway"):
            execute(img, get_machine("core2").build(), max_instructions=10_000)

    def test_corrupt_return_address_traps(self):
        src = """
        func main() {
            var x;
            // At O0, x is the first frame slot ([fp - 8]); the caller's
            // fp sits at [fp + 0] and the return address at [fp + 8],
            // i.e. 16 bytes above &x.
            poke(&x + 16, 12345);
            return 0;
        }
        """
        exe = compile_single(src, opt_level=0)
        img = load_process(exe, Environment.typical())
        with pytest.raises(SimulationError):
            execute(img, get_machine("core2").build(), max_instructions=100_000)


class TestLsd:
    def test_eligibility_detects_small_backward_loops(self, small_exe_o2):
        eligible = compute_lsd_eligible(small_exe_o2, capacity=32)
        assert any(eligible)

    def test_large_capacity_covers_more(self, small_exe_o2):
        small = sum(compute_lsd_eligible(small_exe_o2, capacity=4))
        large = sum(compute_lsd_eligible(small_exe_o2, capacity=64))
        assert large >= small

    def test_loops_with_calls_excluded(self):
        src = """
        func f() { return 1; }
        func main() {
            var i; var s;
            s = 0;
            for (i = 0; i < 4; i = i + 1) { s = s + f(); }
            return s;
        }
        """
        exe = compile_single(src, opt_level=1)
        eligible = compute_lsd_eligible(exe, capacity=64)
        # The loop containing the call must not be eligible; find the
        # backward branch around it.
        for i, flag in enumerate(eligible):
            if flag:
                body = exe.ops[exe.targets[i] : i + 1]
                assert 31 not in body  # no CALL inside

    def test_lsd_reduces_cycles(self, small_exe_o2):
        cfg_on = get_machine("core2")
        cfg_off = cfg_on.with_overrides(has_lsd=False)
        img = load_process(small_exe_o2, Environment.typical())
        on = execute(img, cfg_on.build())
        off = execute(img, cfg_off.build())
        assert on.counters.lsd_covered > 0
        assert off.counters.lsd_covered == 0
        assert on.counters.cycles < off.counters.cycles
