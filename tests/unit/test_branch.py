"""Unit tests: branch predictors."""

import pytest

from repro.arch.branch import (
    BimodalPredictor,
    GSharePredictor,
    make_predictor,
)


class TestBimodal:
    def test_learns_always_taken(self):
        p = BimodalPredictor(table_bits=8)
        addr = 0x400100
        mispredicts = sum(p.observe(addr, True) for _ in range(50))
        assert mispredicts <= 1  # counters start weakly-taken

    def test_learns_always_not_taken(self):
        p = BimodalPredictor(table_bits=8)
        addr = 0x400100
        results = [p.observe(addr, False) for _ in range(50)]
        assert sum(results[2:]) == 0  # after training, perfect

    def test_alternating_pattern_hurts(self):
        p = BimodalPredictor(table_bits=8)
        addr = 0x400100
        outcomes = [bool(i % 2) for i in range(100)]
        mispredicts = sum(p.observe(addr, t) for t in outcomes)
        assert mispredicts >= 40  # bimodal cannot learn alternation

    def test_aliasing_between_far_branches(self):
        # Two branches 2^(bits+1) apart share a counter.
        p = BimodalPredictor(table_bits=6)
        a = 0x400000
        b = a + (1 << 7)  # same index after >> 1 & mask
        for __ in range(10):
            p.observe(a, True)
        # b inherits a's bias: predicting taken, so not-taken mispredicts.
        assert p.observe(b, False) is True

    def test_reset(self):
        p = BimodalPredictor(table_bits=6)
        for __ in range(10):
            p.observe(0x400000, False)
        p.reset()
        assert p.observe(0x400000, False) is True  # back to weakly-taken

    def test_table_bits_validated(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_bits=2)


class TestGShare:
    def test_learns_history_patterns(self):
        # A strict alternation is learnable with history.
        p = GSharePredictor(table_bits=10, history_bits=4)
        addr = 0x400200
        outcomes = [bool(i % 2) for i in range(400)]
        mispredicts = sum(p.observe(addr, t) for t in outcomes)
        # After warmup the pattern is captured; allow generous warmup.
        assert mispredicts < 100

    def test_beats_bimodal_on_correlated_branches(self):
        pattern = [True, True, False] * 200
        g = GSharePredictor(table_bits=10, history_bits=6)
        b = BimodalPredictor(table_bits=10)
        addr = 0x400300
        g_miss = sum(g.observe(addr, t) for t in pattern)
        b_miss = sum(b.observe(addr, t) for t in pattern)
        assert g_miss < b_miss

    def test_history_bits_validated(self):
        with pytest.raises(ValueError):
            GSharePredictor(table_bits=8, history_bits=9)

    def test_reset_clears_history(self):
        p = GSharePredictor(table_bits=8, history_bits=4)
        for i in range(16):
            p.observe(0x400000, bool(i & 1))
        p.reset()
        assert p._history == 0  # type: ignore[attr-defined]


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_predictor("bimodal", 8, 1), BimodalPredictor)
        assert isinstance(make_predictor("gshare", 8, 4), GSharePredictor)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_predictor("neural", 8, 4)
