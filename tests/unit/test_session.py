"""Unit tests: measurement archiving and drift verification."""

import json

import pytest

from repro import workloads
from repro.arch import core2
from repro.core import Experiment, ExperimentalSetup
from repro.core.errors import ArchiveCorruption
from repro.core.session import (
    FORMAT_V1,
    load_measurements,
    measurement_from_dict,
    measurement_to_dict,
    record_checksum,
    save_measurements,
    setup_from_dict,
    setup_to_dict,
    verify_against_archive,
)


@pytest.fixture(scope="module")
def exp():
    return Experiment(workloads.get("sphinx3"), size="test", seed=0)


class TestSetupSerialization:
    def test_roundtrip_simple(self):
        s = ExperimentalSetup(
            opt_level=3, env_bytes=512, link_order=("a", "b")
        )
        assert setup_from_dict(setup_to_dict(s)) == s

    def test_roundtrip_custom_machine(self):
        s = ExperimentalSetup(machine=core2().with_overrides(has_lsd=False))
        back = setup_from_dict(setup_to_dict(s))
        assert back.machine_config() == s.machine_config()

    def test_json_safe(self):
        import json

        s = ExperimentalSetup(machine=core2(), link_order=("x",))
        json.dumps(setup_to_dict(s))  # must not raise


class TestMeasurementSerialization:
    def test_roundtrip(self, exp, base_setup):
        m = exp.run(base_setup)
        back = measurement_from_dict(measurement_to_dict(m))
        assert back.exit_value == m.exit_value
        assert back.counters.cycles == m.counters.cycles
        assert back.setup == m.setup

    def test_save_and_load(self, exp, base_setup, tmp_path):
        ms = [
            exp.run(base_setup.with_changes(env_bytes=e))
            for e in (100, 164)
        ]
        path = str(tmp_path / "archive.json")
        save_measurements(path, ms, note="unit test")
        loaded = load_measurements(path)
        assert len(loaded) == 2
        assert [m.counters.cycles for m in loaded] == [
            m.counters.cycles for m in ms
        ]

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="archive"):
            load_measurements(str(path))


class TestArchiveCorruptionDiagnostics:
    """Every load failure must be an ArchiveCorruption naming the file
    and, where applicable, the record — never a raw KeyError or
    JSONDecodeError."""

    def _saved(self, exp, base_setup, tmp_path):
        path = str(tmp_path / "archive.json")
        save_measurements(path, [exp.run(base_setup)], note="corruption test")
        return path

    def test_truncated_file(self, exp, base_setup, tmp_path):
        path = self._saved(exp, base_setup, tmp_path)
        raw = open(path).read()
        open(path, "w").write(raw[: len(raw) // 2])
        with pytest.raises(ArchiveCorruption, match="invalid JSON") as info:
            load_measurements(path)
        assert info.value.path == path

    def test_missing_measurement_keys(self, exp, base_setup, tmp_path):
        path = self._saved(exp, base_setup, tmp_path)
        data = json.load(open(path))
        record = data["measurements"][0]
        del record["measurement"]["counters"]
        record["sha256"] = record_checksum(record["measurement"])
        json.dump(data, open(path, "w"))
        with pytest.raises(ArchiveCorruption, match="counters") as info:
            load_measurements(path)
        assert info.value.record == 0

    def test_checksum_mismatch_names_the_record(
        self, exp, base_setup, tmp_path
    ):
        path = self._saved(exp, base_setup, tmp_path)
        data = json.load(open(path))
        data["measurements"][0]["measurement"]["counters"]["cycles"] += 1.0
        json.dump(data, open(path, "w"))
        with pytest.raises(ArchiveCorruption, match="checksum") as info:
            load_measurements(path)
        assert info.value.path == path
        assert info.value.record == 0
        assert "record 0" in str(info.value)

    def test_measurements_not_a_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": FORMAT_V1, "measurements": 7}))
        with pytest.raises(ArchiveCorruption, match="list"):
            load_measurements(str(path))

    def test_v1_archive_still_loads(self, exp, base_setup, tmp_path):
        # Pre-checksum archives (bare measurement dicts) must stay
        # readable for old published artifacts.
        m = exp.run(base_setup)
        path = tmp_path / "v1.json"
        path.write_text(
            json.dumps(
                {
                    "format": FORMAT_V1,
                    "measurements": [measurement_to_dict(m)],
                }
            )
        )
        loaded = load_measurements(str(path))
        assert loaded[0].counters.cycles == m.counters.cycles


class TestDriftVerification:
    def test_no_drift_on_deterministic_substrate(self, exp, base_setup):
        archived = [exp.run(base_setup.with_changes(env_bytes=100))]
        assert verify_against_archive(exp, archived) is None

    def test_drift_detected(self, exp, base_setup):
        m = exp.run(base_setup.with_changes(env_bytes=100))
        tampered = measurement_from_dict(measurement_to_dict(m))
        tampered.counters.cycles += 123.0
        assert "drift" in verify_against_archive(exp, [tampered])

    def test_tolerance_allows_small_drift(self, exp, base_setup):
        m = exp.run(base_setup.with_changes(env_bytes=100))
        tampered = measurement_from_dict(measurement_to_dict(m))
        tampered.counters.cycles *= 1.0001
        assert (
            verify_against_archive(exp, [tampered], tolerance=0.01) is None
        )
