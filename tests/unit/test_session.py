"""Unit tests: measurement archiving and drift verification."""

import pytest

from repro import workloads
from repro.arch import core2
from repro.core import Experiment, ExperimentalSetup
from repro.core.session import (
    load_measurements,
    measurement_from_dict,
    measurement_to_dict,
    save_measurements,
    setup_from_dict,
    setup_to_dict,
    verify_against_archive,
)


@pytest.fixture(scope="module")
def exp():
    return Experiment(workloads.get("sphinx3"), size="test", seed=0)


class TestSetupSerialization:
    def test_roundtrip_simple(self):
        s = ExperimentalSetup(
            opt_level=3, env_bytes=512, link_order=("a", "b")
        )
        assert setup_from_dict(setup_to_dict(s)) == s

    def test_roundtrip_custom_machine(self):
        s = ExperimentalSetup(machine=core2().with_overrides(has_lsd=False))
        back = setup_from_dict(setup_to_dict(s))
        assert back.machine_config() == s.machine_config()

    def test_json_safe(self):
        import json

        s = ExperimentalSetup(machine=core2(), link_order=("x",))
        json.dumps(setup_to_dict(s))  # must not raise


class TestMeasurementSerialization:
    def test_roundtrip(self, exp, base_setup):
        m = exp.run(base_setup)
        back = measurement_from_dict(measurement_to_dict(m))
        assert back.exit_value == m.exit_value
        assert back.counters.cycles == m.counters.cycles
        assert back.setup == m.setup

    def test_save_and_load(self, exp, base_setup, tmp_path):
        ms = [
            exp.run(base_setup.with_changes(env_bytes=e))
            for e in (100, 164)
        ]
        path = str(tmp_path / "archive.json")
        save_measurements(path, ms, note="unit test")
        loaded = load_measurements(path)
        assert len(loaded) == 2
        assert [m.counters.cycles for m in loaded] == [
            m.counters.cycles for m in ms
        ]

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="archive"):
            load_measurements(str(path))


class TestDriftVerification:
    def test_no_drift_on_deterministic_substrate(self, exp, base_setup):
        archived = [exp.run(base_setup.with_changes(env_bytes=100))]
        assert verify_against_archive(exp, archived) is None

    def test_drift_detected(self, exp, base_setup):
        m = exp.run(base_setup.with_changes(env_bytes=100))
        tampered = measurement_from_dict(measurement_to_dict(m))
        tampered.counters.cycles += 123.0
        assert "drift" in verify_against_archive(exp, [tampered])

    def test_tolerance_allows_small_drift(self, exp, base_setup):
        m = exp.run(base_setup.with_changes(env_bytes=100))
        tampered = measurement_from_dict(measurement_to_dict(m))
        tampered.counters.cycles *= 1.0001
        assert (
            verify_against_archive(exp, [tampered], tolerance=0.01) is None
        )
