"""Unit tests: the deterministic fault-injection layer."""

import pytest

from repro import faults, workloads
from repro.core import Experiment, ExperimentalSetup
from repro.core.errors import (
    BuildError,
    RunTimeout,
    SimulationError,
    VerificationError,
)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


class TestFaultPlan:
    def test_draws_are_deterministic(self):
        plan = faults.FaultPlan(seed=11, hang_rate=0.5)
        fires = [plan.fires("hang", f"key-{i}", 1) for i in range(50)]
        again = [plan.fires("hang", f"key-{i}", 1) for i in range(50)]
        assert fires == again
        assert any(fires) and not all(fires)  # a rate, not a constant

    def test_seed_changes_the_schedule(self):
        a = faults.FaultPlan(seed=1, verify_rate=0.5)
        b = faults.FaultPlan(seed=2, verify_rate=0.5)
        keys = [f"key-{i}" for i in range(64)]
        assert [a.fires("verify", k, 1) for k in keys] != [
            b.fires("verify", k, 1) for k in keys
        ]

    def test_zero_rate_never_fires(self):
        plan = faults.FaultPlan(seed=0)
        assert not any(
            plan.fires(kind, f"k{i}", 1)
            for kind in faults.KINDS
            for i in range(20)
        )

    def test_transient_faults_clear(self):
        plan = faults.FaultPlan(
            seed=3,
            hang_rate=1.0,
            transient_fraction=1.0,
            max_transient_attempts=2,
        )
        key = "some-measurement"
        assert plan.fires("hang", key, 1)
        # clears after at most max_transient_attempts failed attempts
        assert not plan.fires("hang", key, plan.max_transient_attempts + 1)

    def test_permanent_faults_never_clear(self):
        plan = faults.FaultPlan(seed=4, verify_rate=1.0, transient_fraction=0.0)
        key = "any"
        assert all(plan.fires("verify", key, a) for a in (1, 2, 10, 100))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultPlan().fires("meteor", "k", 1)


class TestProcessKinds:
    def test_kinds_cover_every_failure_domain(self):
        assert set(faults.KINDS) == (
            set(faults.MEASUREMENT_KINDS)
            | set(faults.PROCESS_KINDS)
            | set(faults.NETWORK_KINDS)
            | set(faults.STORAGE_KINDS)
            | set(faults.SERVICE_KINDS)
        )
        assert set(faults.PROCESS_KINDS) == {
            "worker_crash", "worker_hang", "journal_torn_write",
        }
        assert set(faults.NETWORK_KINDS) == {
            "agent_crash", "net_partition", "message_corrupt",
        }
        assert set(faults.STORAGE_KINDS) == {
            "journal_fsync_stall", "disk_full", "store_bitflip",
            "journal_torn_tail",
        }
        assert set(faults.SERVICE_KINDS) == {
            "lease_expire", "client_disconnect", "coordinator_crash",
        }

    def test_process_kind_rates_drive_draws(self):
        plan = faults.FaultPlan(seed=6, worker_crash_rate=0.5)
        fires = [plan.fires("worker_crash", f"k{i}", 1) for i in range(50)]
        assert any(fires) and not all(fires)
        # Other process kinds stay silent at rate 0.
        assert not any(
            plan.fires(k, f"k{i}", 1)
            for k in ("worker_hang", "journal_torn_write")
            for i in range(50)
        )

    def test_transient_process_fault_clears_on_redispatch(self):
        plan = faults.FaultPlan(
            seed=6, worker_hang_rate=1.0, transient_fraction=1.0,
            max_transient_attempts=1,
        )
        assert plan.fires("worker_hang", "k", 1)
        assert not plan.fires("worker_hang", "k", 2)

    def test_should_inject_at_uses_explicit_attempt(self):
        plan = faults.FaultPlan(
            seed=6, torn_write_rate=1.0, transient_fraction=1.0,
            max_transient_attempts=1,
        )
        assert not faults.should_inject_at("journal_torn_write", "k", 1)
        with faults.injected_faults(plan):
            # Independent of begin_attempt bookkeeping.
            faults.begin_attempt("k", 7)
            assert faults.should_inject_at("journal_torn_write", "k", 1)
            assert not faults.should_inject_at("journal_torn_write", "k", 2)

    def test_torn_write_is_not_a_catchable_measurement_fault(self):
        assert issubclass(faults.TornWrite, BaseException)
        assert not issubclass(faults.TornWrite, Exception)


class TestStorageKinds:
    """Storage chaos draws behave exactly like every other family:
    deterministic, seed-sensitive, transient-capable."""

    def test_storage_draws_are_deterministic(self):
        plan = faults.FaultPlan(seed=12, disk_full_rate=0.5)
        fires = [plan.fires("disk_full", f"key-{i}", 1) for i in range(50)]
        again = [plan.fires("disk_full", f"key-{i}", 1) for i in range(50)]
        assert fires == again
        assert any(fires) and not all(fires)

    def test_storage_seed_changes_the_schedule(self):
        keys = [f"entry-{i}" for i in range(64)]
        a = faults.FaultPlan(seed=1, store_bitflip_rate=0.5)
        b = faults.FaultPlan(seed=2, store_bitflip_rate=0.5)
        assert [a.fires("store_bitflip", k, 1) for k in keys] != [
            b.fires("store_bitflip", k, 1) for k in keys
        ]

    def test_storage_kinds_draw_independently(self):
        plan = faults.FaultPlan(seed=8, torn_tail_rate=0.5)
        fires = [
            plan.fires("journal_torn_tail", f"k{i}", 1) for i in range(50)
        ]
        assert any(fires) and not all(fires)
        # Sibling storage kinds stay silent at rate 0.
        assert not any(
            plan.fires(k, f"k{i}", 1)
            for k in ("journal_fsync_stall", "disk_full", "store_bitflip")
            for i in range(50)
        )

    def test_transient_storage_fault_clears(self):
        plan = faults.FaultPlan(
            seed=5, torn_tail_rate=1.0, transient_fraction=1.0,
            max_transient_attempts=1,
        )
        assert plan.fires("journal_torn_tail", "k", 1)
        assert not plan.fires("journal_torn_tail", "k", 2)

    def test_stall_seconds_is_a_plan_field(self):
        plan = faults.parse_plan("fsync_stall=1.0,stall_seconds=0.25")
        assert plan.fsync_stall_rate == 1.0
        assert plan.fsync_stall_seconds == 0.25


class TestParsePlan:
    def test_shorthand_with_kind_aliases(self):
        plan = faults.parse_plan(
            "seed=3,worker_crash=0.4,worker_hang=0.25,"
            "transient=1.0,max_transient_attempts=1"
        )
        assert plan == faults.FaultPlan(
            seed=3, worker_crash_rate=0.4, worker_hang_rate=0.25,
            transient_fraction=1.0, max_transient_attempts=1,
        )

    def test_json_object_with_field_names(self):
        plan = faults.parse_plan('{"seed": 7, "torn_write_rate": 0.2}')
        assert plan == faults.FaultPlan(seed=7, torn_write_rate=0.2)

    def test_torn_alias_and_int_coercion(self):
        plan = faults.parse_plan("torn=0.5,seed=9")
        assert plan.torn_write_rate == 0.5
        assert plan.seed == 9 and isinstance(plan.seed, int)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan key"):
            faults.parse_plan("meteor=1.0")

    def test_empty_and_malformed_specs_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            faults.parse_plan("   ")
        with pytest.raises(ValueError, match="key=value"):
            faults.parse_plan("seed")
        with pytest.raises(ValueError, match="bad fault-plan JSON"):
            faults.parse_plan("{not json")
        with pytest.raises(ValueError, match="bad fault-plan value"):
            faults.parse_plan("seed=soon")

    def test_json_must_be_an_object(self):
        with pytest.raises(ValueError, match="must be an object"):
            faults.parse_plan("[1, 2]")

    def test_json_values_are_validated_too(self):
        with pytest.raises(ValueError, match="bad fault-plan value"):
            faults.parse_plan('{"seed": "soon"}')
        with pytest.raises(ValueError, match="unknown fault-plan key"):
            faults.parse_plan('{"meteor_rate": 1.0}')

    def test_json_accepts_kind_aliases(self):
        plan = faults.parse_plan('{"torn": 0.2, "seed": 4}')
        assert plan == faults.FaultPlan(seed=4, torn_write_rate=0.2)

    def test_network_kind_aliases(self):
        plan = faults.parse_plan(
            "seed=2,agent_crash=0.1,net_partition=0.2,message_corrupt=0.3"
        )
        assert plan == faults.FaultPlan(
            seed=2,
            agent_crash_rate=0.1,
            net_partition_rate=0.2,
            message_corrupt_rate=0.3,
        )

    def test_unknown_key_error_names_the_choices(self):
        with pytest.raises(ValueError) as excinfo:
            faults.parse_plan("meteor=1.0")
        for alias in ("agent_crash", "net_partition", "message_corrupt"):
            assert alias in str(excinfo.value)


class TestInstallation:
    def test_injected_faults_scopes_the_plan(self):
        plan = faults.FaultPlan(seed=1, build_rate=1.0)
        assert faults.active() is None
        with faults.injected_faults(plan):
            assert faults.active() is plan
        assert faults.active() is None

    def test_begin_attempt_feeds_should_inject(self):
        plan = faults.FaultPlan(
            seed=5, hang_rate=1.0, transient_fraction=1.0,
            max_transient_attempts=1,
        )
        with faults.injected_faults(plan):
            faults.begin_attempt("k", 1)
            assert faults.should_inject("hang", "k")
            faults.begin_attempt("k", 5)
            assert not faults.should_inject("hang", "k")


class TestSubstrateHooks:
    """Each fault kind maps to a real failure path in the harness."""

    @pytest.fixture()
    def exp(self):
        return Experiment(workloads.get("sphinx3"))

    def _plan_for(self, kind):
        rates = {f"{k}_rate": 0.0 for k in ("build", "hang", "verify")}
        rates["counter_rate"] = 0.0
        key = {"counters": "counter_rate"}.get(kind, f"{kind}_rate")
        rates[key] = 1.0
        return faults.FaultPlan(seed=9, transient_fraction=0.0, **rates)

    def test_build_fault_is_injected_ice(self, exp):
        with faults.injected_faults(self._plan_for("build")):
            with pytest.raises(BuildError, match="injected"):
                exp.build(ExperimentalSetup())

    def test_hang_fault_trips_the_cycle_watchdog(self, exp):
        with faults.injected_faults(self._plan_for("hang")):
            with pytest.raises(RunTimeout, match="cycle budget"):
                exp.run(ExperimentalSetup())

    def test_counter_fault_is_detected_by_sanity_check(self, exp):
        with faults.injected_faults(self._plan_for("counters")):
            with pytest.raises(SimulationError, match="corrupted"):
                exp.run(ExperimentalSetup())

    def test_verify_fault_trips_self_checking(self, exp):
        with faults.injected_faults(self._plan_for("verify")):
            with pytest.raises(VerificationError):
                exp.run(ExperimentalSetup())

    def test_no_plan_measures_normally(self, exp):
        m = exp.run(ExperimentalSetup())
        assert m.cycles > 0
