"""Unit tests: structural validation."""

import pytest

from repro.isa import (
    BasicBlock,
    Function,
    Instr,
    Module,
    Op,
    ValidationError,
    validate_function,
    validate_module,
)


def _func(blocks):
    return Function("f", blocks=blocks)


class TestValidateFunction:
    def test_valid_function_passes(self):
        validate_function(
            _func([BasicBlock("e", [Instr(Op.CONST, rd=0, imm=1), Instr(Op.RET)])])
        )

    def test_no_blocks_rejected(self):
        with pytest.raises(ValidationError, match="no blocks"):
            validate_function(_func([]))

    def test_duplicate_labels_rejected(self):
        blocks = [
            BasicBlock("a", [Instr(Op.NOP)]),
            BasicBlock("a", [Instr(Op.RET)]),
        ]
        with pytest.raises(ValidationError, match="duplicate block labels"):
            validate_function(_func(blocks))

    def test_branch_to_unknown_label_rejected(self):
        blocks = [
            BasicBlock("a", [Instr(Op.BEQZ, ra=1, target="nowhere")]),
            BasicBlock("b", [Instr(Op.RET)]),
        ]
        with pytest.raises(ValidationError, match="nowhere"):
            validate_function(_func(blocks))

    def test_register_out_of_range_rejected(self):
        blocks = [BasicBlock("a", [Instr(Op.ADD, rd=16, ra=0, rb=0), Instr(Op.RET)])]
        with pytest.raises(ValidationError, match="register out of range"):
            validate_function(_func(blocks))

    def test_terminator_mid_block_rejected(self):
        blocks = [
            BasicBlock("a", [Instr(Op.RET), Instr(Op.NOP), Instr(Op.RET)]),
        ]
        with pytest.raises(ValidationError, match="terminator in middle"):
            validate_function(_func(blocks))

    def test_missing_final_terminator_rejected(self):
        blocks = [BasicBlock("a", [Instr(Op.NOP)])]
        with pytest.raises(ValidationError, match="terminator"):
            validate_function(_func(blocks))

    def test_empty_middle_block_allowed(self):
        blocks = [
            BasicBlock("a", [Instr(Op.NOP)]),
            BasicBlock("join", []),
            BasicBlock("b", [Instr(Op.RET)]),
        ]
        validate_function(_func(blocks))  # must not raise

    def test_empty_final_block_rejected(self):
        blocks = [BasicBlock("a", [Instr(Op.NOP)]), BasicBlock("end", [])]
        with pytest.raises(ValidationError, match="empty final block"):
            validate_function(_func(blocks))

    def test_call_without_target_rejected(self):
        blocks = [BasicBlock("a", [Instr(Op.CALL), Instr(Op.RET)])]
        with pytest.raises(ValidationError, match="CALL without a target"):
            validate_function(_func(blocks))

    def test_odd_frame_size_rejected(self):
        f = Function(
            "f",
            blocks=[BasicBlock("e", [Instr(Op.RET)])],
            frame_size=12,
        )
        with pytest.raises(ValidationError, match="frame size"):
            validate_function(f)

    def test_fallthrough_blocks_allowed(self):
        blocks = [
            BasicBlock("a", [Instr(Op.CONST, rd=1, imm=0)]),
            BasicBlock("b", [Instr(Op.RET)]),
        ]
        validate_function(_func(blocks))


class TestValidateModule:
    def test_cross_module_call_is_legal(self):
        m = Module("m")
        blk = BasicBlock("e", [Instr(Op.CALL, target="elsewhere"), Instr(Op.RET)])
        m.add_function(Function("f", blocks=[blk]))
        validate_module(m)  # linker resolves it; compile-time legal

    def test_error_names_module_and_function(self):
        m = Module("mymod")
        m.add_function(Function("broken", blocks=[]))
        with pytest.raises(ValidationError, match="mymod:broken"):
            validate_module(m)
