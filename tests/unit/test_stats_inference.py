"""Tests for the repro.stats inference layer.

The rank tests and intervals are implemented from first principles;
scipy (a test-only dependency, per README) is the oracle for the
p-values, exactly as tests/unit/test_stats.py uses it for the
distribution functions.
"""

import math

import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.core.errors import StatsError
from repro.stats import (
    SKEW_THRESHOLD,
    analyze_speedups,
    bca_confidence_interval,
    cliffs_delta,
    convergence_trajectory,
    hodges_lehmann,
    jackknife_acceleration,
    mann_whitney_u,
    paired_speedup_test,
    rank_biserial,
    rankdata,
    required_setups,
    wilcoxon_signed_rank,
)

X = [1.02, 1.10, 0.97, 1.15, 1.04, 1.08, 0.99, 1.21, 1.05, 1.11]
Y = [1.00, 1.03, 1.01, 1.09, 1.02, 1.01, 1.00, 1.12, 1.03, 1.05]


class TestRankdata:
    def test_matches_scipy_midranks(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0]
        ours = rankdata(values)
        theirs = scipy_stats.rankdata(values, method="average")
        assert ours == pytest.approx(list(theirs))

    def test_all_tied(self):
        assert rankdata([7.0, 7.0, 7.0]) == [2.0, 2.0, 2.0]


class TestWilcoxonSignedRank:
    def test_p_value_matches_scipy(self):
        ours = wilcoxon_signed_rank(X, Y)
        theirs = scipy_stats.wilcoxon(
            [a - b for a, b in zip(X, Y)], correction=False, method="approx"
        )
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-9)

    def test_statistic_is_w_plus(self):
        # All-positive differences: W+ is the full rank sum n(n+1)/2.
        r = wilcoxon_signed_rank([0.1, 0.2, 0.3, 0.4])
        assert r.statistic == 10.0
        assert r.method == "wilcoxon-signed-rank"

    def test_zero_differences_dropped(self):
        r = wilcoxon_signed_rank([0.0, 0.0, 0.1, -0.2, 0.3])
        assert r.n == 3

    def test_all_zero_differences_raise(self):
        with pytest.raises(StatsError):
            wilcoxon_signed_rank([0.0, 0.0, 0.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(StatsError):
            wilcoxon_signed_rank([1.0, 2.0], [1.0])

    def test_significance_threshold(self):
        r = wilcoxon_signed_rank(X, Y)
        assert r.significant(0.95) == (r.p_value < 0.05)


class TestMannWhitneyU:
    def test_matches_scipy(self):
        ours = mann_whitney_u(X, Y)
        theirs = scipy_stats.mannwhitneyu(
            X, Y, method="asymptotic", use_continuity=False
        )
        assert ours.statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-9)

    def test_ties_matches_scipy(self):
        a = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        b = [2.0, 2.0, 3.0, 4.0, 4.0]
        ours = mann_whitney_u(a, b)
        theirs = scipy_stats.mannwhitneyu(
            a, b, method="asymptotic", use_continuity=False
        )
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-9)

    def test_empty_sample_raises(self):
        with pytest.raises(StatsError):
            mann_whitney_u([], [1.0])

    def test_all_tied_pools_raise(self):
        with pytest.raises(StatsError):
            mann_whitney_u([5.0, 5.0], [5.0, 5.0, 5.0])


class TestEffectSizes:
    def test_rank_biserial_extremes(self):
        assert rank_biserial([0.1, 0.2, 0.3]) == 1.0
        assert rank_biserial([-0.1, -0.2]) == -1.0
        assert rank_biserial([]) == 0.0

    def test_cliffs_delta_extremes(self):
        assert cliffs_delta([2.0, 3.0], [0.0, 1.0]) == 1.0
        assert cliffs_delta([0.0], [1.0, 2.0]) == -1.0
        assert cliffs_delta([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_cliffs_delta_empty_raises(self):
        with pytest.raises(StatsError):
            cliffs_delta([], [1.0])

    def test_hodges_lehmann_is_median_of_walsh_averages(self):
        # For [1, 2, 10]: walsh averages 1, 1.5, 2, 5.5, 6, 10 -> 3.75.
        assert hodges_lehmann([1.0, 2.0, 10.0]) == pytest.approx(3.75)

    def test_hodges_lehmann_empty_raises(self):
        with pytest.raises(StatsError):
            hodges_lehmann([])


class TestBcaInterval:
    def test_brackets_the_mean_and_is_labeled(self):
        ci = bca_confidence_interval(X, seed=3)
        assert ci.lo < ci.mean < ci.hi
        assert ci.method == "BCa"
        assert "BCa" in str(ci)

    def test_deterministic_given_seed(self):
        assert bca_confidence_interval(X, seed=3) == bca_confidence_interval(
            X, seed=3
        )
        assert bca_confidence_interval(X, seed=3) != bca_confidence_interval(
            X, seed=4
        )

    def test_degenerate_samples_raise(self):
        with pytest.raises(StatsError):
            bca_confidence_interval([1.0])
        with pytest.raises(StatsError):
            bca_confidence_interval([2.0, 2.0, 2.0])
        with pytest.raises(StatsError):
            bca_confidence_interval(X, level=1.0)

    def test_jackknife_acceleration_zero_when_loo_stats_agree(self):
        # A constant statistic has identical leave-one-out values: no
        # acceleration, graceful degradation to bias-corrected percentile.
        assert (
            jackknife_acceleration([1.0, 2.0, 3.0, 4.0], lambda xs: 42.0)
            == 0.0
        )
        # The mean's acceleration sign follows the sample's skew.
        mean = lambda xs: sum(xs) / len(xs)
        assert jackknife_acceleration([1.0, 1.0, 1.0, 5.0], mean) != 0.0

    def test_skewed_sample_shifts_interval_toward_tail(self):
        skewed = [1.0, 1.01, 1.02, 1.01, 1.0, 1.02, 1.01, 3.0]
        bca = bca_confidence_interval(skewed, seed=1)
        assert bca.lo < bca.mean < bca.hi


class TestRequiredSetups:
    def test_needs_two_observations(self):
        with pytest.raises(StatsError):
            required_setups([])
        with pytest.raises(StatsError):
            required_setups([1.1])

    def test_bad_level_and_target_raise(self):
        with pytest.raises(StatsError):
            required_setups([1.0, 1.1], level=0.0)
        with pytest.raises(StatsError):
            required_setups([1.0, 1.1], level=1.0)
        with pytest.raises(StatsError):
            required_setups([1.0, 1.1], target_rel_width=0.0)

    def test_zero_variance_is_converged(self):
        est = required_setups([1.5, 1.5, 1.5])
        assert est.converged
        assert est.recommended_n == 3
        assert est.half_width == 0.0
        assert "converged" in est.summary_line()

    def test_zero_mean_raises(self):
        with pytest.raises(StatsError):
            required_setups([-1.0, 1.0])

    def test_projection_shrinks_width_below_target(self):
        est = required_setups(X, target_rel_width=0.01)
        assert not est.converged
        assert est.recommended_n > est.n_observed
        assert "recommend" in est.summary_line()
        # The projected n actually reaches the target width.
        from repro.stats.samplesize import _half_width
        from repro.core.stats import SummaryStats

        stats = SummaryStats.from_values(X)
        projected = _half_width(stats.std, est.recommended_n, est.level)
        assert projected <= est.target_rel_width * abs(stats.mean)

    def test_loose_target_already_converged(self):
        est = required_setups(X, target_rel_width=0.5)
        assert est.converged
        assert est.recommended_n == len(X)

    def test_to_dict_round_trips_fields(self):
        d = required_setups(X).to_dict()
        assert d["n_observed"] == len(X)
        assert d["method"] == "t-width projection"
        assert isinstance(d["converged"], bool)


class TestConvergenceTrajectory:
    def test_prefix_curve_shape(self):
        curve = convergence_trajectory(X)
        assert [n for n, __ in curve] == list(range(2, len(X) + 1))
        assert all(rel >= 0.0 for __, rel in curve)

    def test_identical_prefix_contributes_zero(self):
        curve = convergence_trajectory([1.0, 1.0, 1.0, 1.2])
        assert curve[0] == (2, 0.0)
        assert curve[1] == (3, 0.0)
        assert curve[2][1] > 0.0

    def test_short_samples_raise(self):
        with pytest.raises(StatsError):
            convergence_trajectory([])
        with pytest.raises(StatsError):
            convergence_trajectory([1.0])

    def test_level_edges_raise(self):
        with pytest.raises(StatsError):
            convergence_trajectory(X, level=0.0)
        with pytest.raises(StatsError):
            convergence_trajectory(X, level=1.0)


class TestPairedSpeedupTest:
    def test_log_scale_against_one(self):
        result, effect = paired_speedup_test(X)
        oracle = scipy_stats.wilcoxon(
            [math.log(s) for s in X], correction=False, method="approx"
        )
        assert result.p_value == pytest.approx(oracle.pvalue, abs=1e-9)
        assert effect > 0  # most ratios exceed 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(StatsError):
            paired_speedup_test([])
        with pytest.raises(StatsError):
            paired_speedup_test([1.1, -0.5])
        with pytest.raises(StatsError):
            paired_speedup_test([1.0, 1.0, 1.0])


class TestAnalyzeSpeedups:
    def test_bundle_is_complete_and_consistent(self):
        a = analyze_speedups(X, seed=3)
        assert a.n == len(X)
        assert a.distinct_setups == len(X)
        assert a.t_interval.method == "t"
        assert a.bca_interval.method == "BCa"
        assert a.geomean == pytest.approx(
            math.exp(sum(math.log(s) for s in X) / len(X))
        )
        assert a.direction in ("speedup", "slowdown", "inconclusive")

    def test_direction_tracks_effect_sign(self):
        slow = [1.0 / s for s in X]
        a = analyze_speedups(slow, seed=3)
        if a.significant:
            assert a.direction == "slowdown"

    def test_to_dict_is_the_manifest_stats_section(self):
        d = analyze_speedups(X, distinct_setups=8, seed=3).to_dict()
        assert d["n"] == len(X)
        assert d["distinct_setups"] == 8
        assert d["aggregate"]["method"] == "geometric-mean"
        assert {iv["method"] for iv in d["intervals"]} == {"t", "BCa"}
        assert d["tests"][0]["method"] == "wilcoxon-signed-rank"
        assert "recommended_n" in d["sample_size"]
        assert d["verdict"]["direction"] == "speedup"
        import json

        json.dumps(d)  # JSON-serializable as recorded

    def test_skew_note_appears_past_threshold(self):
        skewed = [1.0, 1.01, 1.02, 1.01, 1.0, 1.02, 1.01, 3.0]
        a = analyze_speedups(skewed, seed=1)
        assert abs(a.skew) > SKEW_THRESHOLD
        assert any("BCa" in line for line in a.summary_lines())

    def test_distinct_setups_cannot_exceed_n(self):
        with pytest.raises(StatsError):
            analyze_speedups(X, distinct_setups=len(X) + 1)

    def test_degenerate_sample_raises(self):
        with pytest.raises(StatsError):
            analyze_speedups([1.1])
        with pytest.raises(StatsError):
            analyze_speedups([1.1, 1.1, 1.1])
