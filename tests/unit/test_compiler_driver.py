"""Unit tests: the compiler driver and executable inspection."""

import pytest

from repro.toolchain import CompileError, compile_program, compile_unit, link
from repro.toolchain.compiler import check_sources_order, compilation_report

from tests.conftest import SMALL_SOURCES


class TestCompileUnit:
    def test_bad_level_rejected(self):
        with pytest.raises(CompileError, match="O5"):
            compile_unit("func main() { return 0; }", "m", opt_level=5)

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            compile_unit("func main() { return 0; }", "m", profile="clang")

    def test_custom_profile_validated(self):
        from repro.toolchain import CompilerProfile

        bad = CompilerProfile(
            name="x",
            inline_threshold=(0, 0, 0, 0),
            unroll_factor=(0, 1, 1, 1),  # invalid
            promote_registers=(0,) * 4,
            cache_global_bases=(0,) * 4,
            schedule=(False,) * 4,
            loop_alignment=(1,) * 4,
        )
        with pytest.raises(ValueError):
            compile_unit("func main() { return 0; }", "m", profile=bad)

    def test_module_name_propagates(self):
        mod = compile_unit("func main() { return 0; }", "mymodule")
        assert mod.name == "mymodule"

    def test_syntax_errors_carry_filename(self):
        with pytest.raises(CompileError, match="badfile"):
            compile_unit("func main( { return 0; }", "badfile")


class TestCompileProgram:
    def test_preserves_module_order(self):
        mods = compile_program(SMALL_SOURCES)
        assert [m.name for m in mods] == list(SMALL_SOURCES)

    def test_check_sources_order(self):
        check_sources_order(SMALL_SOURCES, ["main", "kernel"])
        with pytest.raises(CompileError):
            check_sources_order(SMALL_SOURCES, ["kernel"])


class TestCompilationReport:
    def test_report_shape(self):
        report = compilation_report(SMALL_SOURCES)
        assert set(report) == set(SMALL_SOURCES)
        for per_level in report.values():
            assert set(per_level) == {0, 1, 2, 3}

    def test_o1_shrinks_static_code(self):
        # Cleanup passes strictly reduce the naive O0 output.
        report = compilation_report(SMALL_SOURCES)
        for per_level in report.values():
            assert per_level[1][0] <= per_level[0][0]
            assert per_level[1][1] <= per_level[0][1]

    def test_o3_unrolling_grows_loopy_code(self):
        # Static size is NOT monotone in the level: O3 trades code size
        # for dynamic work — exactly the tension the paper studies.
        report = compilation_report(SMALL_SOURCES)
        kernel = report["kernel"]
        assert kernel[3][1] > kernel[2][1]


class TestExecutableInspection:
    def test_disassemble(self, small_exe_o2):
        listing = small_exe_o2.disassemble("fill")
        assert "fill @" in listing
        assert "ret" in listing

    def test_disassemble_unknown(self, small_exe_o2):
        with pytest.raises(KeyError):
            small_exe_o2.disassemble("ghost")

    def test_function_at(self, small_exe_o2):
        pf = small_exe_o2.placed_by_name("total")
        assert small_exe_o2.function_at(pf.flat_start).name == "total"
        assert small_exe_o2.function_at(pf.flat_end - 1).name == "total"
        assert small_exe_o2.function_at(10**9) is None

    def test_repr_mentions_shape(self, small_exe_o2):
        text = repr(small_exe_o2)
        assert "functions" in text and "instructions" in text
