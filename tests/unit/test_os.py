"""Unit tests: environment model and process loader."""

import pytest

from repro.os import Environment, STACK_TOP, load_process
from repro.os.loader import LoaderError

from tests.conftest import build_small


class TestEnvironment:
    def test_byte_accounting(self):
        env = Environment({"A": "b"})  # "A=b\0" -> 4 bytes
        assert env.total_bytes == 4

    def test_empty(self):
        assert Environment.empty().total_bytes == 0
        assert len(Environment.empty()) == 0

    def test_of_size_exact(self):
        for target in (80, 81, 100, 4096):
            env = Environment.of_size(target, Environment.typical())
            assert env.total_bytes == target

    def test_of_size_from_empty(self):
        assert Environment.of_size(10).total_bytes == 10

    def test_of_size_noop_when_exact(self):
        base = Environment.typical()
        env = Environment.of_size(base.total_bytes, base)
        assert env == base

    def test_of_size_too_small_rejected(self):
        base = Environment.typical()
        with pytest.raises(ValueError):
            Environment.of_size(base.total_bytes + 1, base)  # needs >= 3

    def test_of_size_rejects_existing_padding_var(self):
        with pytest.raises(ValueError, match="padding var"):
            Environment.of_size(100, Environment({"Z": "x"}))

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Environment({"A=B": "x"})
        with pytest.raises(ValueError):
            Environment({"": "x"})

    def test_with_without_var(self):
        env = Environment.empty().with_var("X", "1")
        assert "X" in env and env["X"] == "1"
        assert "X" not in env.without_var("X")

    def test_immutability_via_copies(self):
        base = Environment.typical()
        base.with_var("NEW", "v")
        assert "NEW" not in base

    def test_equality_and_hash(self):
        a = Environment({"A": "1", "B": "2"})
        b = Environment({"B": "2", "A": "1"})
        assert a == b and hash(a) == hash(b)


class TestLoader:
    def test_env_size_moves_stack(self, small_exe_o2):
        img1 = load_process(small_exe_o2, Environment.of_size(100))
        img2 = load_process(small_exe_o2, Environment.of_size(200))
        assert img1.sp_start - img2.sp_start == 100

    def test_single_byte_sensitivity(self, small_exe_o2):
        # With 4-byte alignment, growing the environment by 4 bytes moves
        # sp by exactly 4.
        img1 = load_process(small_exe_o2, Environment.of_size(100))
        img2 = load_process(small_exe_o2, Environment.of_size(104))
        assert img1.sp_start - img2.sp_start == 4

    def test_stack_alignment_honoured(self, small_exe_o2):
        for align in (4, 8, 16):
            img = load_process(
                small_exe_o2, Environment.of_size(101), stack_align=align
            )
            assert img.sp_start % align == 0

    def test_stack_below_top(self, small_exe_o2):
        img = load_process(small_exe_o2, Environment.typical())
        assert img.sp_start < STACK_TOP

    def test_bad_alignment_rejected(self, small_exe_o2):
        with pytest.raises(LoaderError):
            load_process(small_exe_o2, stack_align=3)

    def test_data_init_applied(self, small_exe_o2):
        img = load_process(small_exe_o2)
        # `table` is zero-initialized: no initializer entries for it, but
        # the image must carry any data_init the executable declares.
        assert img.initial_memory == dict(small_exe_o2.data_init)

    def test_input_binding_scalar_and_array(self):
        exe = build_small()
        img = load_process(exe, inputs={"table": [5, 6, 7]})
        base = exe.data_addrs["table"]
        assert img.initial_memory[base] == 5
        assert img.initial_memory[base + 16] == 7

    def test_unknown_binding_rejected(self):
        exe = build_small()
        with pytest.raises(LoaderError, match="no data symbol"):
            load_process(exe, inputs={"ghost": 1})

    def test_oversized_binding_rejected(self):
        exe = build_small()
        with pytest.raises(LoaderError, match="elements"):
            load_process(exe, inputs={"table": [0] * 129})

    def test_byte_binding_range_checked(self):
        from repro.toolchain.compiler import compile_unit
        from repro.toolchain import link

        exe = link(
            [compile_unit("byte b[4]; func main() { return b[0]; }", "m")]
        )
        with pytest.raises(LoaderError, match="out of range"):
            load_process(exe, inputs={"b": [300]})

    def test_argv_affects_stack(self, small_exe_o2):
        a = load_process(small_exe_o2, argv=("prog",))
        b = load_process(small_exe_o2, argv=("prog", "--flag"))
        assert a.sp_start != b.sp_start
