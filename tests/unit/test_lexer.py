"""Unit tests: minic lexer."""

import pytest

from repro.toolchain.errors import CompileError
from repro.toolchain.lexer import Token, token_value, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)]


class TestBasics:
    def test_keywords_vs_names(self):
        toks = tokenize("int x func while whileish")
        assert [t.kind for t in toks] == ["kw", "name", "kw", "kw", "name"]

    def test_numbers_decimal_and_hex(self):
        toks = tokenize("42 0x2A 0")
        assert [token_value(t) for t in toks] == [42, 42, 0]

    def test_malformed_hex_rejected(self):
        with pytest.raises(CompileError, match="hex"):
            tokenize("0x")

    def test_underscore_names(self):
        assert texts("_a __b a_b1") == ["_a", "__b", "a_b1"]

    def test_token_value_rejects_non_numbers(self):
        with pytest.raises(ValueError):
            token_value(Token("name", "x", 1, 1))


class TestOperators:
    def test_maximal_munch(self):
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("a< <b") == ["a", "<", "<", "b"]
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("a&&b") == ["a", "&&", "b"]
        assert texts("a&b") == ["a", "&", "b"]

    def test_all_multichar_operators(self):
        for op in ("<<", ">>", "<=", ">=", "==", "!=", "&&", "||"):
            assert texts(f"x {op} y")[1] == op

    def test_unexpected_character_rejected(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a $ b")


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_rejected(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize("a /* never ends")


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_positions_after_block_comment(self):
        toks = tokenize("/* one\ntwo */ x")
        assert toks[0].line == 2

    def test_error_carries_location(self):
        with pytest.raises(CompileError) as exc:
            tokenize("ok\n  $")
        assert exc.value.line == 2
        assert exc.value.col == 3
