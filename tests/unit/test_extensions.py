"""Unit tests: library extensions — profile diff, characterization,
randomization dimensions, machine serialization."""

import pytest

from repro import workloads
from repro.analysis import profile_diff
from repro.arch import core2, pentium4
from repro.arch.machines import MachineConfig
from repro.core import Experiment, ExperimentalSetup
from repro.core.randomization import DIMENSIONS, random_setups
from repro.workloads.characterize import (
    dynamic_character,
    footprint_vs_cache,
    opcode_mix,
    static_character,
)


@pytest.fixture(scope="module")
def exp():
    return Experiment(workloads.get("sphinx3"), size="test", seed=0)


@pytest.fixture(scope="module")
def setup():
    return ExperimentalSetup()


class TestProfileDiff:
    def test_localizes_env_bias(self, exp, setup):
        diff = profile_diff(
            exp,
            setup.with_changes(env_bytes=104),  # aligned
            setup.with_changes(env_bytes=100),  # misaligned
        )
        assert diff.total_delta > 0
        # The per-function deltas must add up to the total.
        assert sum(f.delta for f in diff.functions) == pytest.approx(
            diff.total_delta, rel=1e-9
        )
        # The hot kernel should absorb a meaningful share.
        assert diff.culprit().function in ("gmm_score", "best_of", "main")
        assert 0 < diff.concentration() <= 1.5

    def test_requires_shared_build(self, exp, setup):
        with pytest.raises(ValueError, match="sharing a build"):
            profile_diff(exp, setup, setup.with_changes(opt_level=3))

    def test_ranked_by_magnitude(self, exp, setup):
        diff = profile_diff(
            exp,
            setup.with_changes(env_bytes=104),
            setup.with_changes(env_bytes=100),
        )
        mags = [abs(f.delta) for f in diff.ranked()]
        assert mags == sorted(mags, reverse=True)


class TestCharacterize:
    def test_static_character(self, exp, setup):
        exe = exp.build(setup)
        st = static_character(exe)
        assert st.modules == len(exp.workload.sources)
        assert st.functions >= 3
        assert st.loops > 0
        assert st.code_bytes > 0 and st.data_bytes > 0

    def test_dynamic_character(self, exp, setup):
        dyn = dynamic_character(exp, setup)
        assert dyn.instructions > 0
        assert 0 < dyn.memory_intensity < 1
        assert 0 < dyn.branch_intensity < 1
        assert 0 < dyn.hot_share <= 1
        assert dyn.hot_function == "gmm_score"

    def test_opcode_mix_covers_everything(self, exp, setup):
        exe = exp.build(setup)
        mix = opcode_mix(exe)
        assert sum(mix.values()) == exe.num_instructions()
        assert mix["alu"] > 0 and mix["memory"] > 0 and mix["control"] > 0

    def test_footprint_vs_cache(self, exp, setup):
        exe = exp.build(setup)
        code_frac, data_frac = footprint_vs_cache(exe, 4096)
        assert code_frac > 0 and data_frac > 0


class TestRandomizationDimensions:
    def test_default_randomizes_paper_dimensions_only(self):
        setups = random_setups(
            ExperimentalSetup(), ["a", "b"], n=8, seed=1
        )
        assert all(s.stack_align == 4 for s in setups)
        assert all(s.function_alignment == 16 for s in setups)

    def test_extended_dimensions(self):
        setups = random_setups(
            ExperimentalSetup(),
            ["a", "b"],
            n=30,
            seed=1,
            dimensions=DIMENSIONS,
        )
        assert len({s.stack_align for s in setups}) > 1
        assert len({s.function_alignment for s in setups}) > 1

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError, match="unknown randomization"):
            random_setups(
                ExperimentalSetup(), ["a"], n=2, dimensions=("phase_of_moon",)
            )

    def test_subset_dimensions(self):
        setups = random_setups(
            ExperimentalSetup(), ["a", "b"], n=6, dimensions=("env_bytes",)
        )
        assert all(s.link_order is None for s in setups)
        assert all(s.env_bytes is not None for s in setups)


class TestMachineSerialization:
    def test_roundtrip(self):
        for cfg in (core2(), pentium4()):
            assert MachineConfig.from_dict(cfg.to_dict()) == cfg

    def test_dict_is_plain_data(self):
        import json

        text = json.dumps(core2().to_dict())
        assert MachineConfig.from_dict(json.loads(text)) == core2()

    def test_roundtrip_preserves_behaviour(self, exp, setup):
        clone = MachineConfig.from_dict(core2().to_dict())
        a = exp.run(setup.with_changes(machine=clone, env_bytes=3333))
        b = exp.run(setup.with_changes(machine=core2(), env_bytes=3333))
        assert a.cycles == b.cycles

    def test_no_l2_roundtrip(self):
        cfg = core2().with_overrides(l2=None)
        assert MachineConfig.from_dict(cfg.to_dict()).l2 is None
