"""Unit tests: the supervised worker pool and its chaos harness.

Covers the supervision acceptance criteria: a sweep under injected
worker crashes/hangs produces a report byte-identical to the fault-free
serial run (failover never consumes retry budget), an exhausted respawn
budget degrades honestly to in-process execution naming every setup,
torn journal writes are recovered losslessly on resume, and worker trace
spans are grafted into the parent trace.
"""

import io

import pytest

from repro import faults, workloads
from repro.core import Experiment, ExperimentalSetup
from repro.core.runner import RunnerConfig, SweepRunner, compact_journal
from repro.core.supervisor import SupervisedPool, Task
from repro.obs import progress as obs_progress
from repro.obs import trace as obs_trace

WORKLOAD = "sphinx3"

SETUPS = [
    ExperimentalSetup(env_bytes=e) for e in (100, 116, 132, 148, 164, 180)
]

#: Chaos + measurement faults, all transient so every sweep completes.
CHAOS_PLAN = faults.FaultPlan(
    seed=3,
    hang_rate=0.4,
    verify_rate=0.3,
    worker_crash_rate=0.4,
    worker_hang_rate=0.25,
    transient_fraction=1.0,
    max_transient_attempts=2,
)

#: Supervision tuned for test wall-clock: fast heartbeats, short leash.
FAST_SUPERVISION = dict(
    heartbeat_interval=0.05, hang_timeout=1.0, backoff_base=0.001
)


def fresh_experiment():
    return Experiment(workloads.get(WORKLOAD))


def keys():
    exp = fresh_experiment()
    return [
        faults.fault_key(exp.workload.name, exp.size, exp.seed, s)
        for s in SETUPS
    ]


def run_sweep(jobs, plan=None, journal=None, max_retries=3, **cfg):
    runner = SweepRunner(
        fresh_experiment(),
        RunnerConfig(
            jobs=jobs, max_retries=max_retries, **{**FAST_SUPERVISION, **cfg}
        ),
        journal_path=journal,
        fault_plan=plan,
        sleep=lambda s: None,
    )
    return runner.run(SETUPS)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


def _echo(payload):
    return payload * 2


class TestSupervisedPool:
    @pytest.mark.slow
    def test_pool_runs_tasks_and_drains(self):
        with SupervisedPool(workers=2, task_fn=_echo) as pool:
            for i in range(5):
                pool.submit(Task(index=i, key=f"k{i}", attempt=1, payload=i))
            results = {}
            while True:
                event = pool.poll(timeout=30.0)
                if event is None:
                    break
                assert event.kind == "result"
                results[event.task.index] = event.result
        assert results == {i: i * 2 for i in range(5)}
        assert pool.respawns == 0

    def test_worker_count_validated(self):
        with pytest.raises(ValueError, match="workers"):
            SupervisedPool(workers=0, task_fn=_echo)


class TestChaosFailover:
    @pytest.mark.slow
    def test_chaos_parallel_report_is_byte_identical_to_serial(self):
        """The tentpole criterion: worker crashes and hangs are
        infrastructure faults — invisible in the report."""
        # The plan must actually exercise the supervision paths.
        assert any(
            CHAOS_PLAN.fires("worker_crash", k, 1) for k in keys()
        ), "chaos plan fires no crashes; pick a different seed"
        assert any(
            CHAOS_PLAN.fires("worker_hang", k, 1) for k in keys()
        ), "chaos plan fires no hangs; pick a different seed"
        serial = run_sweep(jobs=1, plan=CHAOS_PLAN)
        chaos = run_sweep(jobs=3, plan=CHAOS_PLAN)
        assert chaos.report.to_json() == serial.report.to_json()
        assert chaos.report.complete and not chaos.report.degraded
        assert [m.cycles for m in chaos.ok] == [m.cycles for m in serial.ok]

    @pytest.mark.slow
    def test_every_worker_hang_is_recovered_without_retries(self):
        """Failover must not consume the measurement retry budget: a hang
        on every first dispatch still yields a zero-retry report (the
        is_retryable double-count regression)."""
        plan = faults.FaultPlan(
            seed=5,
            worker_hang_rate=1.0,
            transient_fraction=1.0,
            max_transient_attempts=1,
        )
        baseline = run_sweep(jobs=1)
        result = run_sweep(jobs=2, plan=plan, max_respawns=12)
        rep = result.report
        assert rep.complete and not rep.degraded
        assert rep.retries == 0, "worker failover was charged as a retry"
        assert [m.cycles for m in result.ok] == [
            m.cycles for m in baseline.ok
        ]

    @pytest.mark.slow
    def test_exhausted_respawn_budget_degrades_honestly(self):
        """Permanent crashes burn the budget; the sweep must finish
        serially in-process and name every setup the pool dropped."""
        plan = faults.FaultPlan(
            seed=1, worker_crash_rate=1.0, transient_fraction=0.0
        )
        baseline = run_sweep(jobs=1)
        result = run_sweep(jobs=2, plan=plan, max_respawns=2)
        rep = result.report
        assert rep.degraded
        assert rep.degraded_setups == [s.describe() for s in SETUPS]
        assert "DEGRADED" in rep.summary_line()
        # Degraded, not silent-partial: the in-process fallback measured
        # everything (process chaos never fires in-process).
        assert rep.complete
        assert [m.cycles for m in result.ok] == [
            m.cycles for m in baseline.ok
        ]
        assert rep.to_dict()["degraded"] is True


class TestTornWriteRecovery:
    def test_torn_append_is_dropped_on_resume_and_compaction_is_lossless(
        self, tmp_path
    ):
        path = str(tmp_path / "sweep.jsonl")
        plan = faults.FaultPlan(
            seed=1,
            torn_write_rate=0.25,
            transient_fraction=1.0,
            max_transient_attempts=1,
        )
        exp = fresh_experiment()
        torn_at = [
            i
            for i, s in enumerate(SETUPS)
            if plan.fires(
                "journal_torn_write",
                faults.fault_key(exp.workload.name, exp.size, exp.seed, s),
                1,
            )
        ]
        assert torn_at and torn_at[0] > 0, "plan must tear mid-sweep"
        baseline = run_sweep(jobs=1)

        # The injected tear unwinds the sweep like a crash would —
        # uncatchable by per-measurement recovery.
        with pytest.raises(faults.TornWrite):
            run_sweep(jobs=1, plan=plan, journal=path)

        resumed = run_sweep(jobs=1, plan=plan, journal=path)
        rep = resumed.report
        # Exactly the torn record was dropped: everything journaled
        # before it resumes, it and everything after re-measures.
        assert rep.resumed == torn_at[0]
        assert rep.measured == len(SETUPS) - torn_at[0]
        assert rep.complete
        assert [m.cycles for m in resumed.ok] == [
            m.cycles for m in baseline.ok
        ]

        # Compaction preserves the checksummed records byte-for-byte...
        with open(path) as fh:
            before = {
                l for l in fh.read().splitlines() if '"measurement"' in l
            }
        stats = compact_journal(path)
        assert stats.records_after == len(SETUPS)
        with open(path) as fh:
            after = {
                l for l in fh.read().splitlines() if '"measurement"' in l
            }
        assert after == before
        # ...and resume from the compacted journal is lossless even with
        # the plan still active (the recovered tear does not re-fire).
        final = run_sweep(jobs=1, plan=plan, journal=path)
        assert final.report.resumed == len(SETUPS)
        assert final.report.measured == 0

    @pytest.mark.slow
    def test_torn_write_fires_in_parallel_mode_too(self, tmp_path):
        """Journal appends happen in the parent; the plan must scope
        around the parallel path as well."""
        path = str(tmp_path / "sweep.jsonl")
        plan = faults.FaultPlan(
            seed=1,
            torn_write_rate=0.25,
            transient_fraction=1.0,
            max_transient_attempts=1,
        )
        import json

        with pytest.raises(faults.TornWrite):
            run_sweep(jobs=2, plan=plan, journal=path)
        resumed = run_sweep(jobs=2, plan=plan, journal=path)
        assert resumed.report.complete
        # The tear was recovered and recorded durably (completion order
        # decides how many records preceded it, so `resumed` can be 0).
        with open(path) as fh:
            header = json.loads(fh.readline())
        assert header["torn_recovered"] == 1
        assert resumed.report.resumed + resumed.report.measured == len(SETUPS)


class TestWorkerTraceGrafting:
    def _child_records(self):
        clock = iter(float(t) for t in range(100)).__next__
        child = obs_trace.Tracer(clock=clock, label="worker-0")
        with child.span("run", category="engine", index=3) as run:
            with child.span("profile", category="engine"):
                pass
            run.set(cycles=123.0)
        return child.to_dicts()

    def test_graft_rewrites_paths_ids_and_parents(self):
        clock = iter(float(t) for t in range(100)).__next__
        parent = obs_trace.Tracer(clock=clock)
        with parent.span("sweep", category="runner") as sweep_span:
            grafted = parent.graft(
                self._child_records(), parent=sweep_span, alias="setup@3.1"
            )
        run, profile = grafted
        assert run.path == "sweep#0/setup@3.1/run#0"
        assert profile.path == "sweep#0/setup@3.1/run#0/profile#0"
        # Deterministic ids re-derived from the rewritten paths.
        assert run.span_id == obs_trace.span_id_for_path(run.path)
        assert run.parent_id == sweep_span.span_id
        assert profile.parent_id == run.span_id
        assert run.depth == sweep_span.depth + 1
        assert profile.depth == run.depth + 1
        assert run.attrs["cycles"] == 123.0
        # Grafted spans are part of this tracer's record stream.
        assert set(grafted) <= set(parent.spans)

    def test_graft_is_rootable_and_empty_safe(self):
        parent = obs_trace.Tracer()
        assert parent.graft([]) == []
        grafted = parent.graft(self._child_records())
        assert grafted[0].path == "run#0"
        assert grafted[0].parent_id is None
        assert obs_trace.NULL_TRACER.graft(self._child_records()) == []

    @pytest.mark.slow
    def test_parallel_sweep_collects_worker_spans(self):
        tracer = obs_trace.Tracer()
        with obs_trace.tracing(tracer):
            result = run_sweep(jobs=2)
        assert result.report.complete
        worker_spans = [s for s in tracer.spans if "/setup@" in s.path]
        assert worker_spans, "no worker spans were grafted"
        names = {s.name for s in worker_spans}
        assert "run" in names  # the engine span, traced in the worker
        # Every setup's task shows up under the sweep span.
        aliases = {s.path.split("/")[1] for s in worker_spans}
        assert aliases == {f"setup@{i}.1" for i in range(len(SETUPS))}


class TestWorkerProgressEvents:
    def test_line_progress_reports_worker_lifecycle(self):
        buf = io.StringIO()
        reporter = obs_progress.LineProgress(buf)
        reporter.worker_event("crash", 1, index=4)
        reporter.worker_event("respawn", 1)
        reporter.worker_event("degraded", -1, detail="2 setups left")
        out = buf.getvalue()
        assert "WORKER CRASH w1 during #4" in out
        assert "WORKER RESPAWN w1" in out
        assert "WORKER DEGRADED: 2 setups left" in out

    def test_null_reporter_ignores_worker_events(self):
        obs_progress.NULL_PROGRESS.worker_event("hang", 0)


class TestParentStallRebaseline:
    """A SIGSTOP'd (or suspended) *parent* must not declare every busy
    worker hung on resume: the scan gap is credited back to the
    heartbeats (proven end-to-end by crashsim's parent_sigstop mode)."""

    def _pool(self):
        return SupervisedPool(
            workers=1, task_fn=_echo, hang_timeout=1.0,
            heartbeat_interval=0.05,
        )

    def test_scan_gap_credits_worker_heartbeats(self):
        with self._pool() as pool:
            pool._scan_liveness()  # settle the scan clock
            stalls_before = pool.parent_stalls
            w = pool._workers[0]
            w.task = Task(index=0, key="k", attempt=1, payload=0)
            # The whole process group was stopped for 5s: the parent's
            # scan clock and the worker's heartbeat are equally stale.
            pool._heartbeats[w.slot] -= 5.0
            pool._last_scan -= 5.0
            pool._scan_liveness()
            assert pool.parent_stalls == stalls_before + 1
            assert not [e for e in pool._events if e.kind == "hang"]
            w.task = None  # no phantom in-flight task at close

    def test_stale_heartbeat_without_scan_gap_is_still_a_hang(self):
        with self._pool() as pool:
            pool._scan_liveness()  # settle the scan clock
            stalls_before = pool.parent_stalls
            w = pool._workers[0]
            w.task = Task(index=0, key="k", attempt=1, payload=0)
            # Only the worker is stale: the parent kept scanning, so
            # this is a real hang, not a parent stall.
            pool._heartbeats[w.slot] -= 5.0
            pool._scan_liveness()
            assert pool.parent_stalls == stalls_before
            assert [e for e in pool._events if e.kind == "hang"]


class TestAdaptiveHangTimeout:
    """hang_timeout=None derives the hang threshold from observed task
    durations instead of a fixed guess (ROADMAP follow-up)."""

    @pytest.fixture
    def pool(self):
        with SupervisedPool(workers=1, task_fn=_echo) as pool:
            yield pool

    def test_fixed_timeout_wins_when_set(self):
        with SupervisedPool(
            workers=1, task_fn=_echo, hang_timeout=7.5
        ) as pool:
            pool._durations.extend([0.01] * 50)
            assert pool.effective_hang_timeout() == 7.5

    def test_default_until_enough_samples(self, pool):
        from repro.core import supervisor

        assert pool.hang_timeout is None
        pool._durations.extend([0.01] * (supervisor._ADAPTIVE_MIN_SAMPLES - 1))
        assert (
            pool.effective_hang_timeout() == supervisor.DEFAULT_HANG_TIMEOUT
        )

    def test_warmup_floor_scales_with_heartbeat(self):
        """A slow-beating config must not have warm-up declare healthy
        busy workers hung: the heartbeat floor applies before enough
        samples exist, not just after."""
        with SupervisedPool(
            workers=1, task_fn=_echo, heartbeat_interval=2.0
        ) as pool:
            assert pool.hang_timeout is None
            assert len(pool._durations) == 0
            assert pool.effective_hang_timeout() == 8.0

    def test_adapts_to_p95_with_floor_and_ceiling(self, pool):
        from repro.core import supervisor

        # Fast tasks: the heartbeat floor wins over 10 * p95.
        pool._durations.extend([0.001] * 20)
        floor = max(4 * pool.heartbeat_interval, 1.0)
        assert pool.effective_hang_timeout() == floor
        # Slow tasks: a clamped multiple of the rolling p95.
        pool._durations.clear()
        pool._durations.extend([0.5] * 20)
        assert pool.effective_hang_timeout() == pytest.approx(5.0)
        # Glacial tasks: the ceiling caps the leash.
        pool._durations.clear()
        pool._durations.extend([60.0] * 20)
        assert (
            pool.effective_hang_timeout() == supervisor._ADAPTIVE_CEILING
        )

    def test_completed_tasks_feed_the_window(self, pool):
        pool.submit(Task(index=0, key="k0", attempt=1, payload=3))
        event = pool.poll(timeout=5.0)
        assert event is not None and event.kind == "result"
        assert len(pool._durations) == 1
        assert pool._durations.samples[0] >= 0.0

    def test_adaptive_sweep_completes(self):
        """End to end: a parallel sweep with no explicit hang_timeout
        (the new default) still measures everything."""
        result = run_sweep(2, hang_timeout=None)
        assert result.report.complete
        assert result.report.measured == len(SETUPS)
