"""Unit tests: cache models."""

import pytest

from repro.arch.cache import Cache, CacheConfig, CacheHierarchy


def small_cache(ways=2, sets=4):
    return Cache(CacheConfig("t", sets * ways * 64, 64, ways))


class TestCacheConfig:
    def test_geometry(self):
        cfg = CacheConfig("L1", 4096, 64, 2)
        assert cfg.num_sets == 32
        assert cfg.num_lines == 64

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 4096, 48, 2)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 1000, 64, 2)

    def test_nonpow2_sets_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheConfig("x", 3 * 64 * 2, 64, 2))


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.access_line(10) is False
        assert c.access_line(10) is True
        assert (c.hits, c.misses) == (1, 1)

    def test_different_sets_do_not_conflict(self):
        c = small_cache(ways=1, sets=4)
        assert c.access_line(0) is False
        assert c.access_line(1) is False
        assert c.access_line(0) is True  # still resident

    def test_conflict_eviction_lru(self):
        c = small_cache(ways=2, sets=4)
        # Lines 0, 4, 8 all map to set 0 in a 4-set cache.
        c.access_line(0)
        c.access_line(4)
        c.access_line(8)  # evicts 0 (LRU)
        assert c.access_line(4) is True
        assert c.access_line(8) is True
        assert c.access_line(0) is False

    def test_lru_updated_on_hit(self):
        c = small_cache(ways=2, sets=4)
        c.access_line(0)
        c.access_line(4)
        c.access_line(0)  # 0 becomes MRU; 4 is now LRU
        c.access_line(8)  # evicts 4
        assert c.access_line(0) is True
        assert c.access_line(4) is False

    def test_set_index_masks_low_bits(self):
        c = small_cache(ways=2, sets=4)
        assert c.set_index(5) == 1
        assert c.set_index(9) == 1

    def test_probe_does_not_modify(self):
        c = small_cache()
        assert c.probe_line(3) is False
        assert c.misses == 0

    def test_flush_preserves_stats(self):
        c = small_cache()
        c.access_line(1)
        c.flush()
        assert c.misses == 1
        assert c.access_line(1) is False

    def test_capacity_bounded(self):
        c = small_cache(ways=2, sets=4)
        for line in range(100):
            c.access_line(line)
        assert len(c.resident_lines()) <= 8


class TestHierarchy:
    def _hierarchy(self):
        return CacheHierarchy(
            l1i=CacheConfig("L1I", 2 * 64 * 2, 64, 2),
            l1d=CacheConfig("L1D", 2 * 64 * 2, 64, 2),
            l2=CacheConfig("L2", 8 * 64 * 4, 64, 4),
            lat_l2=10.0,
            lat_mem=100.0,
        )

    def test_cold_miss_costs_memory(self):
        h = self._hierarchy()
        assert h.access_data(7) == 100.0

    def test_l2_hit_after_l1_eviction(self):
        h = self._hierarchy()
        h.access_data(0)
        h.access_data(4)
        h.access_data(8)  # evicts 0 from L1 (set 0), still in L2
        assert h.access_data(0) == 10.0

    def test_l1_hit_is_free(self):
        h = self._hierarchy()
        h.access_data(3)
        assert h.access_data(3) == 0.0

    def test_instruction_and_data_share_l2(self):
        h = self._hierarchy()
        h.access_instruction(5)  # brings line 5 into L2
        # Evict 5 from L1I by filling its set (set 1 of 2-set L1).
        h.access_instruction(3)
        h.access_instruction(7)
        # A *data* access to line 5 misses L1D but hits the shared L2.
        assert h.access_data(5) == 10.0

    def test_no_l2_means_flat_latency(self):
        h = CacheHierarchy(
            l1i=CacheConfig("L1I", 2 * 64 * 2, 64, 2),
            l1d=CacheConfig("L1D", 2 * 64 * 2, 64, 2),
            l2=None,
            lat_l2=10.0,
            lat_mem=100.0,
        )
        assert h.access_data(1) == 10.0  # "perfect L2"
        assert h.access_data(1) == 0.0
