"""Unit tests: the content-addressed measurement store.

Pins the subsystem's load-bearing invariant — a warm sweep served from
the store produces a SweepReport, journal, and measurement set
byte-identical to the cold sweep that populated it, while skipping the
simulator entirely — plus the key scheme's stability, both backends'
mechanics (atomic writes, LRU GC, verification), the corruption policy
(damaged entries are misses, never crashes), artifact caching, manifest
provenance, archive export, and the `repro store` CLI.
"""

import json
import os

import pytest

from repro import workloads
from repro.core import Experiment, ExperimentalSetup, RunnerConfig, SweepRunner
from repro.core.session import (
    canonical_json,
    load_measurements,
    measurement_to_dict,
)
from repro.obs import metrics as obs_metrics
from repro.obs.manifest import build_manifest, validate_manifest
from repro.store import (
    KEY_SCHEME,
    DiskBackend,
    MeasurementStore,
    MemoryBackend,
    StoreEntryCorrupt,
    engine_fingerprint,
    open_store,
)

WORKLOAD = "sphinx3"

SETUPS = [ExperimentalSetup(env_bytes=e) for e in (100, 116, 132, 148)]


def fresh_experiment():
    return Experiment(workloads.get(WORKLOAD))


def sweep(store, jobs=1, exp=None):
    exp = exp or fresh_experiment()
    runner = SweepRunner(
        exp,
        RunnerConfig(jobs=jobs, backoff_base=0.001),
        store=store,
        sleep=lambda s: None,
    )
    return runner.run(SETUPS)


def engine_runs():
    return obs_metrics.counter("engine.runs").value


def entry_files(root):
    out = []
    for dirpath, _dirs, files in os.walk(root):
        out.extend(os.path.join(dirpath, f) for f in files)
    return sorted(out)


# -- keys -------------------------------------------------------------------


class TestKeys:
    def test_key_is_stable_across_store_instances(self):
        exp = fresh_experiment()
        a = MeasurementStore(MemoryBackend()).key_for(exp, SETUPS[0])
        b = MeasurementStore(MemoryBackend()).key_for(exp, SETUPS[0])
        assert a == b
        assert a.startswith("meas-")

    def test_key_varies_with_every_identity_dimension(self):
        exp = fresh_experiment()
        store = MeasurementStore(MemoryBackend())
        base = store.key_for(exp, SETUPS[0])
        assert store.key_for(exp, SETUPS[1]) != base
        assert (
            store.key_for(exp, SETUPS[0].with_changes(opt_level=3)) != base
        )
        seeded = Experiment(workloads.get(WORKLOAD), seed=7)
        assert store.key_for(seeded, SETUPS[0]) != base

    def test_artifact_key_ignores_run_identity(self):
        # Two experiments over the same sources and build flags share
        # binaries even when their input seeds differ.
        store = MeasurementStore(MemoryBackend())
        a = store.artifact_key_for(fresh_experiment(), SETUPS[0])
        b = store.artifact_key_for(
            Experiment(workloads.get(WORKLOAD), seed=9), SETUPS[0]
        )
        assert a == b
        assert a.startswith("art-")

    def test_engine_fingerprint_is_cached_and_hexadecimal(self):
        fp = engine_fingerprint()
        assert fp == engine_fingerprint()
        assert len(fp) == 64
        int(fp, 16)


# -- backends ---------------------------------------------------------------


class TestBackends:
    @pytest.mark.parametrize("kind", ["memory", "disk"])
    def test_roundtrip_idempotent_put_delete(self, kind, tmp_path):
        backend = (
            MemoryBackend()
            if kind == "memory"
            else DiskBackend(str(tmp_path / "store"))
        )
        assert backend.get("meas-aa") is None
        assert backend.put("meas-aa", b"payload") is True
        assert backend.put("meas-aa", b"other") is False  # first write wins
        assert backend.get("meas-aa") == b"payload"
        assert backend.keys() == ["meas-aa"]
        assert backend.size_bytes() == len(b"payload")
        backend.delete("meas-aa")
        assert backend.get("meas-aa") is None
        assert backend.keys() == []

    def test_disk_gc_evicts_least_recently_used(self, tmp_path):
        backend = DiskBackend(str(tmp_path / "store"))
        for i in range(4):
            backend.put(f"meas-{i:02d}", bytes(100))
            now = 1_000_000 + i
            os.utime(backend._path(f"meas-{i:02d}"), (now, now))
        # Touch the oldest entry: a read refreshes recency.
        backend.get("meas-00")
        evicted, freed = backend.gc(200)
        assert evicted == 2 and freed == 200
        assert backend.get("meas-00") == bytes(100)  # survived via LRU
        assert backend.get("meas-01") is None
        assert backend.get("meas-02") is None

    def test_leaked_tmp_file_is_invisible_and_swept(self, tmp_path):
        """A temp file orphaned by SIGKILL mid-put must not surface as a
        phantom key (which delete/gc could never reclaim — they re-shard
        by key), and a fresh open reclaims it."""
        root = str(tmp_path / "store")
        backend = DiskBackend(root)
        backend.put("meas-aa", b"payload")
        shard = os.path.dirname(backend._path("meas-aa"))
        leaked = [
            os.path.join(shard, ".tmp-deadbeef"),
            os.path.join(shard, ".tmp-cafe.json"),  # pre-fix tmp naming
        ]
        for path in leaked:
            with open(path, "w") as fh:
                fh.write("{ half a write")
        assert backend.keys() == ["meas-aa"]
        assert backend.size_bytes() == len(b"payload")
        assert backend.verify() == (1, [])
        DiskBackend(root)  # re-open sweeps the leftovers
        assert [p for p in leaked if os.path.exists(p)] == []
        assert backend.get("meas-aa") == b"payload"

    def test_disk_verify_flags_damage(self, tmp_path):
        backend = DiskBackend(str(tmp_path / "store"))
        backend.put("meas-ok", b"good")
        backend.put("meas-bad", b"doomed")
        path = backend._path("meas-bad")
        with open(path, "w") as fh:
            fh.write("{ not json")
        ok, corrupt = backend.verify()
        assert ok == 1
        assert corrupt == ["meas-bad"]
        with pytest.raises(StoreEntryCorrupt):
            backend.get("meas-bad")


# -- corruption policy ------------------------------------------------------


class TestCorruption:
    def _seeded_store(self, tmp_path):
        store = open_store(str(tmp_path / "store"))
        exp = fresh_experiment()
        m = exp.run(SETUPS[0])
        assert store.put_measurement(exp, m) is True
        (path,) = entry_files(tmp_path / "store")
        return store, exp, path

    def test_truncated_entry_is_a_counted_miss(self, tmp_path):
        store, exp, path = self._seeded_store(tmp_path)
        with open(path) as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(text[:50])
        assert store.get_measurement(exp, SETUPS[0]) is None
        assert store.corrupt == 1 and store.misses == 1
        assert not os.path.exists(path)  # corrupt entries are purged
        # The next sweep simply re-measures: damage costs one miss.
        result = sweep(store, exp=fresh_experiment())
        assert result.report.accounted()

    def test_bitflipped_payload_fails_checksum(self, tmp_path):
        store, exp, path = self._seeded_store(tmp_path)
        with open(path) as fh:
            entry = json.load(fh)
        payload = entry["payload"]
        flipped = ("B" if payload[10] != "B" else "C")
        entry["payload"] = payload[:10] + flipped + payload[11:]
        with open(path, "w") as fh:
            json.dump(entry, fh)
        assert store.get_measurement(exp, SETUPS[0]) is None
        assert store.corrupt == 1
        assert not os.path.exists(path)


# -- the invariant: warm == cold -------------------------------------------


class TestWarmRuns:
    def test_warm_sweep_skips_engine_and_matches_cold_bytes(self, tmp_path):
        root = str(tmp_path / "store")
        cold_store = open_store(root)
        cold = sweep(cold_store)
        assert cold_store.puts >= len(SETUPS)

        warm_store = open_store(root)  # fresh handle, same directory
        before = engine_runs()
        warm = sweep(warm_store)
        assert engine_runs() == before  # zero simulator executions
        assert warm_store.hits == len(SETUPS)
        assert warm_store.misses == 0

        # The acceptance bar: a warm re-run skips >= 90% of executions
        # (here: all of them) with a byte-identical report.
        assert warm_store.hits / len(SETUPS) >= 0.9
        assert canonical_json(warm.report.to_dict()) == canonical_json(
            cold.report.to_dict()
        )
        assert [measurement_to_dict(m) for m in warm.measurements] == [
            measurement_to_dict(m) for m in cold.measurements
        ]

    def test_warm_parallel_sweep_never_builds_a_pool(self, tmp_path):
        root = str(tmp_path / "store")
        cold = sweep(open_store(root), jobs=2)
        before = engine_runs()
        warm = sweep(open_store(root), jobs=2)
        assert engine_runs() == before
        assert canonical_json(warm.report.to_dict()) == canonical_json(
            cold.report.to_dict()
        )

    def test_warm_journal_matches_cold_journal(self, tmp_path):
        root = str(tmp_path / "store")
        cold_journal = str(tmp_path / "cold.journal")
        warm_journal = str(tmp_path / "warm.journal")
        exp = fresh_experiment()
        runner = SweepRunner(
            exp,
            RunnerConfig(backoff_base=0.001),
            journal_path=cold_journal,
            store=open_store(root),
            sleep=lambda s: None,
        )
        runner.run(SETUPS)
        exp2 = fresh_experiment()
        runner2 = SweepRunner(
            exp2,
            RunnerConfig(backoff_base=0.001),
            journal_path=warm_journal,
            store=open_store(root),
            sleep=lambda s: None,
        )
        runner2.run(SETUPS)
        with open(cold_journal) as fh:
            cold_lines = fh.readlines()
        with open(warm_journal) as fh:
            warm_lines = fh.readlines()
        assert warm_lines == cold_lines

    def test_memory_store_serves_second_sweep_in_process(self):
        store = MeasurementStore(MemoryBackend())
        sweep(store)
        before = engine_runs()
        sweep(store, exp=fresh_experiment())
        assert engine_runs() == before
        assert store.hits == len(SETUPS)


# -- artifact caching -------------------------------------------------------


class TestArtifacts:
    def test_second_process_skips_compilation(self, tmp_path):
        root = str(tmp_path / "store")
        exp = fresh_experiment()
        exp.attach_store(open_store(root))
        exp.build(SETUPS[0])

        fresh = fresh_experiment()  # simulates a new process: cold caches
        store = open_store(root)
        fresh.attach_store(store)
        builds_before = obs_metrics.counter("experiment.builds").value
        fresh.build(SETUPS[0])
        assert store.artifact_hits == 1
        assert obs_metrics.counter("experiment.builds").value == builds_before

    def test_artifact_entry_refusing_foreign_globals(self, tmp_path):
        import pickle

        store = open_store(str(tmp_path / "store"))
        exp = fresh_experiment()
        key = store.artifact_key_for(exp, SETUPS[0])
        store.backend.put(key, pickle.dumps(os.system))
        assert store.get_artifact(exp, SETUPS[0]) is None
        assert store.corrupt == 1

    def test_artifact_entry_refuses_builtins_and_repro_callables(
        self, tmp_path
    ):
        """The unpickler is a concrete-class allowlist: builtins
        (eval/getattr) and repro-module callables alike are refused —
        anything loadable and callable would hand a crafted entry in a
        shared store directory arbitrary code execution."""
        import pickle

        store = open_store(str(tmp_path / "store"))
        exp = fresh_experiment()
        key = store.artifact_key_for(exp, SETUPS[0])
        for smuggled in (eval, getattr, __import__, open_store):
            store.backend.delete(key)
            store.backend.put(key, pickle.dumps(smuggled))
            before = store.corrupt
            assert store.get_artifact(exp, SETUPS[0]) is None
            assert store.corrupt == before + 1


# -- provenance, export, CLI ------------------------------------------------


class TestOperations:
    def test_manifest_store_section_validates(self, tmp_path):
        store = open_store(str(tmp_path / "store"))
        sweep(store)
        manifest = build_manifest(store=store)
        assert validate_manifest(manifest) == []
        section = manifest["store"]
        assert section["scheme"] == KEY_SCHEME
        assert section["puts"] == store.puts
        manifest["store"] = "not-an-object"
        assert validate_manifest(manifest) != []

    def test_export_roundtrips_into_archive(self, tmp_path):
        store = open_store(str(tmp_path / "store"))
        result = sweep(store)
        out = str(tmp_path / "export.json")
        assert store.export(out) == len(SETUPS)
        loaded = load_measurements(out)
        assert sorted(
            canonical_json(measurement_to_dict(m)) for m in loaded
        ) == sorted(
            canonical_json(measurement_to_dict(m)) for m in result.ok
        )

    def test_cli_store_commands(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "store")
        assert (
            main(
                [
                    "run",
                    WORKLOAD,
                    "--env-bytes",
                    "128",
                    "--store",
                    root,
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "store: hits=0" in err

        assert main(["store", "stats", root]) == 0
        out = capsys.readouterr().out
        assert KEY_SCHEME in out and "entries" in out

        assert main(["store", "verify", root]) == 0

        export = str(tmp_path / "archive.json")
        assert main(["store", "export", root, export]) == 0
        capsys.readouterr()
        assert load_measurements(export)

        assert main(["store", "gc", root, "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out and "0 entries (0 bytes) remain" in out
        assert main(["store", "stats", root]) == 0
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if l.startswith("entries"))
        assert line.split()[-1] == "0"

    def test_cli_store_verify_exits_nonzero_on_deep_corruption(
        self, tmp_path, capsys
    ):
        """An entry whose *payload* is junk passes the backend checksum
        but must still fail verification (and the exit code must say
        so): deep verify deserializes every record, not just its bytes."""
        from repro.cli import main
        from repro.store.backend import DiskBackend
        from repro.store.keys import MEASUREMENT_PREFIX

        root = str(tmp_path / "store")
        backend = DiskBackend(root)
        assert backend.put(MEASUREMENT_PREFIX + "0" * 64, b'{"not": "a record"}')
        assert main(["store", "verify", root]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "1 corrupt" in out

    def test_cli_store_requires_a_directory(self, capsys):
        from repro.cli import main

        env_backup = os.environ.pop("REPRO_STORE", None)
        try:
            assert main(["store", "stats"]) == 2
        finally:
            if env_backup is not None:
                os.environ["REPRO_STORE"] = env_backup
        assert "store directory" in capsys.readouterr().err

    def test_cli_no_store_wins_over_store(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "store")
        assert (
            main(
                [
                    "run",
                    WORKLOAD,
                    "--store",
                    root,
                    "--no-store",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert not os.path.exists(root)
