"""Unit tests: workload framework and per-workload definitions
(fast checks only — execution-based validation lives in integration)."""

import pytest

from repro import workloads
from repro.workloads.base import Workload, lcg_stream, scaled
from repro.workloads.refops import band, bnot, bor, bxor, mul, sdiv, shl, shr, smod, wrap64


class TestLcgStream:
    def test_deterministic(self):
        a, b = lcg_stream(7), lcg_stream(7)
        assert [a() for _ in range(10)] == [b() for _ in range(10)]

    def test_seeds_differ(self):
        a, b = lcg_stream(1), lcg_stream(2)
        assert [a() for _ in range(5)] != [b() for _ in range(5)]

    def test_values_nonnegative_and_wide(self):
        rng = lcg_stream(3)
        vals = [rng() for _ in range(100)]
        assert all(v >= 0 for v in vals)
        assert max(vals) > 2**40  # actually using the state width

    def test_low_bits_vary(self):
        rng = lcg_stream(4)
        assert len({rng() & 7 for _ in range(50)}) > 4


class TestScaled:
    def test_selects_by_size(self):
        assert scaled("test", 1, 2, 3) == 1
        assert scaled("train", 1, 2, 3) == 2
        assert scaled("ref", 1, 2, 3) == 3

    def test_unknown_size_raises(self):
        with pytest.raises(KeyError):
            scaled("huge", 1, 2, 3)


class TestRefops:
    def test_wrap64_boundaries(self):
        assert wrap64(2**63) == -(2**63)
        assert wrap64(2**63 - 1) == 2**63 - 1
        assert wrap64(-(2**63) - 1) == 2**63 - 1
        assert wrap64(2**64) == 0

    def test_mul_wraps(self):
        assert mul(2**62, 4) == 0
        assert mul(3, 5) == 15

    def test_shifts(self):
        assert shl(1, 63) == -(2**63)
        assert shr(-1, 60) == 15
        assert shl(1, 64) == 1  # count mod 64
        assert shr(16, 68) == 1

    def test_bitwise_on_negatives(self):
        assert band(-1, 0xFF) == 0xFF
        assert bor(0, -1) == -1
        assert bxor(-1, -1) == 0
        assert bnot(0) == -1

    def test_division(self):
        assert sdiv(-7, 2) == -3
        assert smod(-7, 2) == -1
        assert sdiv(7, -2) == -3
        assert smod(7, -2) == 1


class TestWorkloadDefinitions:
    @pytest.mark.parametrize("name", workloads.all_names())
    def test_metadata_complete(self, name):
        wl = workloads.get(name)
        assert isinstance(wl, Workload)
        assert wl.description
        assert wl.tags
        assert wl.module_names()

    @pytest.mark.parametrize("name", workloads.all_names())
    def test_sources_parse_and_analyze(self, name):
        from repro.toolchain.parser import parse_source
        from repro.toolchain.sema import analyze_unit

        wl = workloads.get(name)
        for mod_name, src in wl.sources.items():
            analyze_unit(parse_source(src, mod_name))

    @pytest.mark.parametrize("name", workloads.all_names())
    def test_sizes_grow(self, name):
        """'ref' inputs must describe at least as much work as 'test'."""
        wl = workloads.get(name)
        test_b = wl.input_for("test", 0)
        ref_b = wl.input_for("ref", 0)
        test_scalars = {
            k: v for k, v in test_b.items() if isinstance(v, int)
        }
        bigger = [
            ref_b[k] >= v
            for k, v in test_scalars.items()
            if isinstance(ref_b.get(k), int) and k.startswith("p_")
        ]
        assert bigger and any(
            ref_b[k] > v
            for k, v in test_scalars.items()
            if isinstance(ref_b.get(k), int) and k.startswith("p_")
        )

    @pytest.mark.parametrize("name", workloads.all_names())
    def test_reference_is_deterministic(self, name):
        wl = workloads.get(name)
        b = wl.input_for("test", 0)
        assert wl.expected(b) == wl.expected(b)

    def test_suite_order_stable(self):
        assert workloads.all_names()[0] == "perlbench"
        assert [w.name for w in workloads.suite()] == workloads.all_names()
