"""Unit tests: minic parser."""

import pytest

from repro.toolchain import ast
from repro.toolchain.errors import CompileError
from repro.toolchain.parser import parse_source


def parse_expr(text):
    unit = parse_source(f"func f() {{ return {text}; }}")
    ret = unit.funcs[0].body.stmts[0]
    assert isinstance(ret, ast.Return)
    return ret.value


class TestDeclarations:
    def test_global_scalar(self):
        unit = parse_source("int g;")
        decl = unit.globals[0]
        assert (decl.name, decl.kind, decl.count, decl.is_array) == (
            "g",
            "words",
            1,
            False,
        )

    def test_global_array_with_init(self):
        unit = parse_source("int a[3] = {1, -2, 3};")
        decl = unit.globals[0]
        assert decl.count == 3
        assert decl.init == [1, -2, 3]

    def test_global_scalar_with_init(self):
        assert parse_source("int g = -7;").globals[0].init == [-7]

    def test_byte_array(self):
        decl = parse_source("byte b[16];").globals[0]
        assert decl.kind == "bytes"

    def test_byte_scalar_rejected(self):
        with pytest.raises(CompileError, match="byte globals must be arrays"):
            parse_source("byte b;")

    def test_function_params(self):
        unit = parse_source("func f(a, b, c) { return a; }")
        assert unit.funcs[0].params == ["a", "b", "c"]

    def test_local_array(self):
        unit = parse_source("func f() { var buf[8]; return 0; }")
        decl = unit.funcs[0].body.stmts[0]
        assert isinstance(decl, ast.VarDecl)
        assert decl.is_array and decl.count == 8

    def test_zero_size_local_array_rejected(self):
        with pytest.raises(CompileError, match="positive size"):
            parse_source("func f() { var b[0]; return 0; }")


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.rhs, ast.BinOp) and e.rhs.op == "*"

    def test_shift_binds_looser_than_add(self):
        e = parse_expr("1 << 2 + 3")
        assert e.op == "<<"
        assert isinstance(e.rhs, ast.BinOp) and e.rhs.op == "+"

    def test_comparison_binds_looser_than_shift(self):
        e = parse_expr("1 < 2 >> 3")
        assert e.op == "<"

    def test_bitand_looser_than_equality(self):
        # C-style: == binds tighter than &.
        e = parse_expr("1 & 2 == 3")
        assert e.op == "&"
        assert e.rhs.op == "=="

    def test_logical_or_loosest(self):
        e = parse_expr("1 && 2 || 3")
        assert e.op == "||"

    def test_left_associativity(self):
        e = parse_expr("10 - 4 - 3")
        assert e.op == "-"
        assert isinstance(e.lhs, ast.BinOp) and e.lhs.op == "-"
        assert isinstance(e.rhs, ast.Num) and e.rhs.value == 3

    def test_parentheses_override(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.lhs.op == "+"

    def test_unary_binds_tightest(self):
        e = parse_expr("-a * b")
        assert e.op == "*"
        assert isinstance(e.lhs, ast.UnOp)


class TestStatements:
    def test_assign_vs_store(self):
        unit = parse_source("func f() { var a[2]; a[0] = 1; return a[0]; }")
        store = unit.funcs[0].body.stmts[1]
        assert isinstance(store, ast.StoreStmt)

    def test_indexed_read_as_expression_statement(self):
        unit = parse_source("int a[2]; func f() { a[0]; return 0; }")
        stmt = unit.funcs[0].body.stmts[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Index)

    def test_if_else_chain(self):
        unit = parse_source(
            "func f(x) { if (x) { return 1; } else if (x > 2) { return 2; } "
            "else { return 3; } }"
        )
        top = unit.funcs[0].body.stmts[0]
        assert isinstance(top, ast.If)
        nested = top.els.stmts[0]
        assert isinstance(nested, ast.If)
        assert nested.els is not None

    def test_for_loop_shape(self):
        unit = parse_source(
            "func f() { var i; for (i = 0; i < 10; i = i + 2) { } return i; }"
        )
        loop = unit.funcs[0].body.stmts[1]
        assert isinstance(loop, ast.For)
        assert loop.var == "i"

    def test_for_loop_update_must_match_variable(self):
        with pytest.raises(CompileError, match="update must assign"):
            parse_source(
                "func f() { var i; var j; for (i = 0; i < 9; j = j + 1) { } "
                "return 0; }"
            )

    def test_while_break_continue(self):
        unit = parse_source(
            "func f() { while (1) { break; continue; } return 0; }"
        )
        body = unit.funcs[0].body.stmts[0].body
        assert isinstance(body.stmts[0], ast.Break)
        assert isinstance(body.stmts[1], ast.Continue)

    def test_addrof_and_call(self):
        e = parse_expr("g(&x, 1)")
        assert isinstance(e, ast.Call)
        assert isinstance(e.args[0], ast.AddrOf)

    def test_unterminated_block_rejected(self):
        with pytest.raises(CompileError):
            parse_source("func f() { return 0;")

    def test_garbage_at_top_level_rejected(self):
        with pytest.raises(CompileError, match="top level"):
            parse_source("return 1;")
