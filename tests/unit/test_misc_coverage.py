"""Unit tests: small paths not covered elsewhere (error formatting,
counter properties, CLI machine selection, environment iteration)."""

import pytest

from repro.arch.counters import PerfCounters
from repro.cli import main
from repro.os import Environment
from repro.toolchain.errors import CompileError


class TestCompileErrorFormatting:
    def test_full_location(self):
        err = CompileError("boom", line=3, col=7, filename="unit.mc")
        assert str(err) == "unit.mc:3:7: boom"
        assert (err.line, err.col, err.filename) == (3, 7, "unit.mc")

    def test_line_only(self):
        assert str(CompileError("boom", line=3)) == "3: boom"

    def test_bare_message(self):
        assert str(CompileError("boom")) == "boom"


class TestPerfCounterProperties:
    def test_zero_division_guards(self):
        c = PerfCounters()
        assert c.cpi == 0.0
        assert c.ipc == 0.0
        assert c.l1d_miss_rate == 0.0
        assert c.mispredict_rate == 0.0

    def test_rates(self):
        c = PerfCounters(
            cycles=200.0,
            instructions=100,
            loads=30,
            stores=10,
            l1d_misses=4,
            branches=20,
            mispredicts=5,
        )
        assert c.cpi == 2.0
        assert c.ipc == 0.5
        assert c.l1d_miss_rate == pytest.approx(0.1)
        assert c.mispredict_rate == pytest.approx(0.25)

    def test_as_dict_round_numbers(self):
        c = PerfCounters(cycles=12.5, instructions=7)
        d = c.as_dict()
        assert d["cycles"] == 12.5
        assert d["instructions"] == 7
        assert set(d) >= {"l1i_misses", "window_straddles", "lsd_covered"}


class TestEnvironmentIteration:
    def test_items_order_preserved(self):
        env = Environment({"B": "2", "A": "1"})
        assert list(env.items()) == [("B", "2"), ("A", "1")]

    def test_len_counts_vars(self):
        assert len(Environment.typical()) == 4

    def test_getitem_and_missing(self):
        env = Environment({"X": "y"})
        assert env["X"] == "y"
        with pytest.raises(KeyError):
            env["Z"]


class TestCliMachineSelection:
    def test_run_on_pentium4(self, capsys):
        assert (
            main(["run", "sphinx3", "--machine", "pentium4", "--opt", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "pentium4" in out and "verified" in out

    def test_study_on_m5(self, capsys):
        assert (
            main(
                [
                    "study",
                    "sphinx3",
                    "env",
                    "--machine",
                    "m5_o3cpu",
                    "--env-stop",
                    "148",
                    "--env-step",
                    "16",
                ]
            )
            == 0
        )
        assert "m5_o3cpu" in capsys.readouterr().out
