"""Unit tests: instruction model (operands, reads/writes, terminators)."""

import pytest

from repro.isa import Instr, Op
from repro.isa.instructions import ALU_IMM_OPS, ALU_OPS, IMM_TO_REG, TERMINATORS


class TestReadsWrites:
    def test_alu_reads_both_sources(self):
        instr = Instr(Op.ADD, rd=1, ra=2, rb=3)
        assert instr.reads() == (2, 3)
        assert instr.writes() == (1,)

    def test_alu_imm_reads_one_source(self):
        instr = Instr(Op.ADDI, rd=4, ra=5, imm=8)
        assert instr.reads() == (5,)
        assert instr.writes() == (4,)

    def test_const_reads_nothing(self):
        instr = Instr(Op.CONST, rd=2, imm=42)
        assert instr.reads() == ()
        assert instr.writes() == (2,)

    def test_load_reads_base_writes_dest(self):
        instr = Instr(Op.LOAD, rd=1, ra=14, imm=-16)
        assert instr.reads() == (14,)
        assert instr.writes() == (1,)

    def test_store_reads_base_and_value_writes_nothing(self):
        instr = Instr(Op.STORE, ra=14, rb=3, imm=-8)
        assert instr.reads() == (14, 3)
        assert instr.writes() == ()

    def test_branch_reads_condition(self):
        instr = Instr(Op.BEQZ, ra=6, target="L1")
        assert instr.reads() == (6,)
        assert instr.writes() == ()

    def test_mov_reads_source(self):
        instr = Instr(Op.MOV, rd=0, ra=7)
        assert instr.reads() == (7,)
        assert instr.writes() == (0,)

    @pytest.mark.parametrize("op", sorted(ALU_OPS))
    def test_every_alu_op_writes_dest(self, op):
        assert Instr(op, rd=3, ra=1, rb=2).writes() == (3,)


class TestTerminators:
    @pytest.mark.parametrize("op", sorted(TERMINATORS))
    def test_terminators(self, op):
        assert Instr(op, target="L" if op in (Op.BEQZ, Op.BNEZ, Op.JMP) else None).is_terminator()

    def test_call_is_not_terminator(self):
        assert not Instr(Op.CALL, target="f").is_terminator()

    def test_alu_is_not_terminator(self):
        assert not Instr(Op.ADD, rd=1, ra=2, rb=3).is_terminator()

    def test_is_branch_only_for_conditionals(self):
        assert Instr(Op.BEQZ, ra=1, target="L").is_branch()
        assert Instr(Op.BNEZ, ra=1, target="L").is_branch()
        assert not Instr(Op.JMP, target="L").is_branch()


class TestEqualityAndCopy:
    def test_copy_is_independent(self):
        a = Instr(Op.ADDI, rd=1, ra=2, imm=3)
        b = a.copy()
        b.imm = 99
        assert a.imm == 3
        assert a != b

    def test_equality_includes_all_fields(self):
        a = Instr(Op.ADD, rd=1, ra=2, rb=3)
        assert a == Instr(Op.ADD, rd=1, ra=2, rb=3)
        assert a != Instr(Op.ADD, rd=1, ra=2, rb=4)
        assert a != Instr(Op.SUB, rd=1, ra=2, rb=3)

    def test_hashable(self):
        s = {Instr(Op.NOP), Instr(Op.NOP), Instr(Op.RET)}
        assert len(s) == 2

    def test_repr_is_readable(self):
        assert "add r1, r2, r3" in repr(Instr(Op.ADD, rd=1, ra=2, rb=3))
        assert "load" in repr(Instr(Op.LOAD, rd=1, ra=14, imm=-8))
        assert "beqz r4, Lexit" in repr(Instr(Op.BEQZ, ra=4, target="Lexit"))


class TestImmRegMapping:
    def test_every_imm_op_maps_to_reg_op(self):
        assert set(IMM_TO_REG) == ALU_IMM_OPS

    def test_mapping_is_semantic(self):
        assert IMM_TO_REG[Op.ADDI] is Op.ADD
        assert IMM_TO_REG[Op.SHLI] is Op.SHL
        assert IMM_TO_REG[Op.SLTI] is Op.SLT
