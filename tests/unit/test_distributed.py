"""Unit tests: the distributed coordinator/agent layer.

Covers the distributed acceptance criteria: a loopback sweep across two
TCP agents — with and without injected network chaos (agent crashes,
partitions, corrupted frames) — produces a report byte-identical to the
fault-free serial run; a roster with no live agent left degrades
honestly to local execution; a bad roster fails loudly before any
measurement; remote spans are grafted under host-qualified aliases; and
the manifest names every host that served results.
"""

import socket
import threading

import pytest

from repro import faults, workloads
from repro.core import Experiment, ExperimentalSetup
from repro.core import distributed as dist
from repro.core.runner import RunnerConfig, SweepRunner
from repro.obs import manifest as obs_manifest
from repro.obs import trace as obs_trace

WORKLOAD = "sphinx3"

SETUPS = [
    ExperimentalSetup(env_bytes=e) for e in (100, 116, 132, 148, 164, 180)
]

#: Network chaos validated to fire every kind at least once against
#: SETUPS (asserted in the chaos test, not assumed).
CHAOS_PLAN = faults.FaultPlan(
    seed=10,
    agent_crash_rate=0.12,
    net_partition_rate=0.3,
    message_corrupt_rate=0.3,
    transient_fraction=1.0,
    max_transient_attempts=1,
)

#: Coordinator knobs tuned for test wall-clock.
FAST_DIST = dict(
    heartbeat_interval=0.05,
    hang_timeout=2.0,
    max_respawns=2,
    connect_timeout=3.0,
)


def fresh_experiment():
    return Experiment(workloads.get(WORKLOAD))


def keys():
    exp = fresh_experiment()
    return [
        faults.fault_key(exp.workload.name, exp.size, exp.seed, s)
        for s in SETUPS
    ]


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def agents():
    """Two loopback agents on ephemeral ports, stopped at teardown."""
    servers = []
    threads = []
    for _ in range(2):
        server = dist.AgentServer(jobs=2, quiet=True)
        server.bind()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    yield servers
    for server in servers:
        server.stop()
    for thread in threads:
        thread.join(timeout=5.0)


def hosts_arg(servers):
    return ",".join(f"127.0.0.1:{s.address[1]}" for s in servers)


def run_sweep(plan=None, hosts=None, **cfg):
    runner = SweepRunner(
        fresh_experiment(),
        RunnerConfig(jobs=1, max_retries=2, hosts=hosts, **cfg),
        fault_plan=plan,
        sleep=lambda s: None,
    )
    return runner.run(SETUPS), runner


class TestFraming:
    def roundtrip(self, kind, data, corrupt=False):
        a, b = socket.socketpair()
        try:
            dist.send_message(a, kind, data, corrupt=corrupt)
            return dist.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_message_roundtrip(self):
        kind, data = self.roundtrip("task", {"key": "k", "n": [1, 2, 3]})
        assert kind == "task"
        assert data == {"key": "k", "n": [1, 2, 3]}

    def test_corrupted_frame_is_rejected(self):
        with pytest.raises(
            dist.ProtocolError, match="JSON|checksum|frame"
        ):
            self.roundtrip("task", {"key": "k"}, corrupt=True)

    def test_bad_magic_is_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"NOPE" + b"\x00" * 8)
            with pytest.raises(dist.ProtocolError, match="magic"):
                dist.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversized_frame_is_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(
                dist._HEADER.pack(dist.MAGIC, dist.MAX_FRAME_BYTES + 1)
            )
            with pytest.raises(dist.ProtocolError, match="length"):
                dist.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_clean_close_is_eof(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(EOFError):
                dist.recv_message(b)
        finally:
            b.close()

    def test_task_payload_roundtrip(self):
        exp = fresh_experiment()
        payload = (
            3, WORKLOAD, exp.size, exp.seed, SETUPS[3], True, 2, None,
            None, 0.0,
        )
        assert dist.wire_to_payload(dist.payload_to_wire(payload)) == payload


class TestAddressParsing:
    def test_parse_host(self):
        assert dist.parse_host(" node1:9000 ") == ("node1", 9000)

    @pytest.mark.parametrize(
        "spec", ["node1", ":9000", "node1:", "node1:port", "node1:70000"]
    )
    def test_parse_host_rejects(self, spec):
        with pytest.raises(ValueError):
            dist.parse_host(spec)

    def test_parse_hosts(self):
        assert dist.parse_hosts("a:1, b:2,") == [("a", 1), ("b", 2)]

    def test_parse_hosts_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            dist.parse_hosts(" , ")

    def test_runner_config_validates_hosts_eagerly(self):
        with pytest.raises(ValueError):
            RunnerConfig(hosts="node1")
        with pytest.raises(ValueError):
            RunnerConfig(connect_timeout=0.0)


class TestAgentServer:
    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            dist.AgentServer(jobs=0)

    def test_port_file_written(self, tmp_path):
        port_file = tmp_path / "agent.port"
        server = dist.AgentServer(port_file=str(port_file), quiet=True)
        try:
            host, port = server.bind()
            assert int(port_file.read_text()) == port
        finally:
            server.stop()
            server._close_listener()


class TestDistributedSweep:
    @pytest.mark.slow
    def test_fault_free_report_is_byte_identical_to_serial(self, agents):
        serial, _ = run_sweep()
        result, runner = run_sweep(hosts=hosts_arg(agents), **FAST_DIST)
        assert result.report.to_json() == serial.report.to_json()
        assert result.report.complete and not result.report.degraded
        served = {h["port"]: h for h in runner.hosts_served}
        assert set(served) == {s.address[1] for s in agents}
        assert sum(h["results"] for h in served.values()) == len(SETUPS)
        for info in served.values():
            assert info["hostname"] == socket.gethostname()
            assert info["jobs"] == 2

    @pytest.mark.slow
    def test_chaos_report_is_byte_identical_to_serial(self, agents):
        """The tentpole criterion: agent crashes, partitions and
        corrupted frames are infrastructure faults — invisible in the
        report."""
        # The plan must exercise every network failure path.  A
        # partition at first dispatch suppresses corruption (nothing is
        # sent) and both suppress the agent-side crash draw (the task
        # never arrives), so assert on *effective* outcomes.
        fired = {"agent_crash": 0, "net_partition": 0, "message_corrupt": 0}
        for key in keys():
            part = CHAOS_PLAN.fires("net_partition", key, 1)
            corrupt = CHAOS_PLAN.fires("message_corrupt", key, 1) and not part
            crash = (
                CHAOS_PLAN.fires("agent_crash", key, 1)
                and not part
                and not corrupt
            )
            fired["net_partition"] += part
            fired["message_corrupt"] += corrupt
            fired["agent_crash"] += crash
        assert all(fired.values()), f"inert chaos plan: {fired}"

        serial, _ = run_sweep()
        result, runner = run_sweep(
            plan=CHAOS_PLAN, hosts=hosts_arg(agents), **FAST_DIST
        )
        assert result.report.to_json() == serial.report.to_json()
        assert result.report.complete and not result.report.degraded
        assert result.report.retries == 0, (
            "network failover was charged as a measurement retry"
        )
        assert sum(s.crashed for s in agents) == 1
        assert sum(h["results"] for h in runner.hosts_served) == len(SETUPS)

    @pytest.mark.slow
    def test_all_agents_lost_degrades_honestly(self, agents):
        """Every agent crashing must finish the sweep locally and name
        every unfinished setup — never a silent partial table."""
        plan = faults.FaultPlan(
            seed=1, agent_crash_rate=1.0, transient_fraction=0.0
        )
        baseline, _ = run_sweep()
        result, _ = run_sweep(
            plan=plan, hosts=hosts_arg(agents), **FAST_DIST
        )
        rep = result.report
        assert rep.degraded
        assert rep.degraded_setups == [s.describe() for s in SETUPS]
        assert rep.complete  # the local fallback measured everything
        assert all(s.crashed for s in agents)
        assert [m.cycles for m in result.ok] == [
            m.cycles for m in baseline.ok
        ]

    def test_bad_roster_fails_loudly(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(dist.AgentUnavailable, match="unreachable"):
            run_sweep(
                hosts=f"127.0.0.1:{dead_port}", connect_timeout=3.0
            )

    @pytest.mark.slow
    def test_remote_spans_graft_under_host_aliases(self, agents):
        tracer = obs_trace.Tracer()
        with obs_trace.tracing(tracer):
            result, _ = run_sweep(hosts=hosts_arg(agents), **FAST_DIST)
        assert result.report.complete
        remote = [s for s in tracer.spans if "/setup@" in s.path]
        assert remote, "no remote spans were grafted"
        labels = {f"127.0.0.1:{s.address[1]}" for s in agents}
        aliases = set()
        for span in remote:
            host_part, alias = span.path.split("/")[1:3]
            assert host_part in labels
            aliases.add(alias)
        assert aliases == {f"setup@{i}.1" for i in range(len(SETUPS))}

    @pytest.mark.slow
    def test_manifest_names_every_host(self, agents, tmp_path):
        result, runner = run_sweep(hosts=hosts_arg(agents), **FAST_DIST)
        manifest = obs_manifest.build_manifest(
            experiment=fresh_experiment(),
            setups=SETUPS,
            report=result.report,
            hosts=runner.hosts_served,
        )
        assert obs_manifest.validate_manifest(manifest) == []
        assert {h["port"] for h in manifest["hosts"]} == {
            s.address[1] for s in agents
        }
        path = tmp_path / "manifest.json"
        obs_manifest.save_manifest(str(path), manifest)
        reloaded = obs_manifest.load_manifest(str(path))
        assert obs_manifest.validate_manifest(reloaded) == []
        assert reloaded["hosts"] == manifest["hosts"]


class TestAuthentication:
    @pytest.fixture
    def secured_agent(self):
        server = dist.AgentServer(jobs=2, quiet=True, secret="s3cret")
        server.bind()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.stop()
        thread.join(timeout=5.0)

    def test_proof_is_not_the_secret_and_is_nonce_bound(self):
        proof = dist.auth_proof("s3cret", "aa" * 16)
        assert proof == dist.auth_proof("s3cret", "aa" * 16)
        assert "s3cret" not in proof
        assert proof != dist.auth_proof("other", "aa" * 16)
        assert proof != dist.auth_proof("s3cret", "bb" * 16)
        int(proof, 16)

    def test_hello_carries_no_static_auth(self):
        # The proof depends on the per-session challenge nonce, so the
        # reusable hello must not embed any secret-derived material.
        hello = dist.build_hello(None, 0.2, None, 8, False)
        assert "auth" not in hello

    def test_captured_proof_does_not_replay(self, secured_agent):
        """A passive observer of one handshake cannot authenticate with
        the captured proof: the next session challenges with a fresh
        nonce."""
        host, port = secured_agent.address

        def handshake(proof):
            sock = socket.create_connection((host, port), timeout=3.0)
            try:
                sock.settimeout(3.0)
                kind, challenge = dist.recv_message(sock)
                assert kind == "challenge"
                nonce = challenge["nonce"]
                hello = dist.build_hello(None, 0.2, None, 8, False)
                hello["auth"] = (
                    proof if proof is not None
                    else dist.auth_proof("s3cret", nonce)
                )
                dist.send_message(sock, "hello", hello)
                reply, data = dist.recv_message(sock)
                if reply == "hello_ack":
                    dist.send_message(sock, "shutdown", {})
                return reply, data, nonce, hello["auth"]
            finally:
                sock.close()

        reply, _data, first_nonce, captured = handshake(None)
        assert reply == "hello_ack"
        replayed, data, second_nonce, _ = handshake(captured)
        assert second_nonce != first_nonce
        assert replayed == "error" and data.get("code") == "auth"

    def test_missing_secret_is_refused_and_counted(self, secured_agent):
        from repro.obs import metrics as obs_metrics

        before = obs_metrics.counter("distributed.auth_failures").value
        host, port = secured_agent.address
        with pytest.raises(dist.AgentUnavailable, match="rejected"):
            run_sweep(hosts=f"{host}:{port}", **FAST_DIST)
        assert (
            obs_metrics.counter("distributed.auth_failures").value
            == before + 1
        )

    def test_wrong_secret_is_refused(self, secured_agent):
        host, port = secured_agent.address
        with pytest.raises(dist.AgentUnavailable, match="rejected"):
            run_sweep(hosts=f"{host}:{port}", secret="wrong", **FAST_DIST)

    @pytest.mark.slow
    def test_matching_secret_sweeps_byte_identically(self, secured_agent):
        serial, _ = run_sweep()
        host, port = secured_agent.address
        result, _ = run_sweep(
            hosts=f"{host}:{port}", secret="s3cret", **FAST_DIST
        )
        assert result.report.to_json() == serial.report.to_json()
        assert result.report.complete and not result.report.degraded

    def test_open_agent_ignores_coordinator_secret(self, agents):
        """A secret on the coordinator side only must not break an
        unsecured fleet (rolling deployment order is free)."""
        result, _ = run_sweep(
            hosts=hosts_arg(agents), secret="s3cret", **FAST_DIST
        )
        assert result.report.complete
