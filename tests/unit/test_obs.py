"""Unit tests: the observability layer (repro.obs).

Covers the subsystem's acceptance criteria: deterministic span
identities and byte-identical traces under an injected clock, valid
Chrome-trace output, metrics registry semantics, manifest build /
validate / round-trip (standalone and embedded in a v2 archive),
progress reporter events (including retries and quarantines), metrics
accounting across kill + resume, the engine's per-PC attribution hook,
and the disabled-path overhead guard.
"""

import json

import pytest

from repro import faults, workloads
from repro.analysis import pc_profile_diff
from repro.arch import execute, get_machine
from repro.core import Experiment, ExperimentalSetup
from repro.core.errors import ArchiveCorruption
from repro.core.runner import Journal, RunnerConfig, SweepRunner, sweep_id
from repro.core.session import load_archive, save_measurements
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import trace as obs_trace
from repro.obs.inspect import validate_trace
from repro.os import Environment, load_process

from tests.conftest import run_exe, shared_experiment

WORKLOAD = "sphinx3"

SETUPS = [ExperimentalSetup(env_bytes=e) for e in (100, 116, 132, 148)]

#: Mixed transient + permanent faults (seed chosen so the sweep above
#: sees at least one retry and at least one quarantine; asserted below).
NOISY_PLAN = faults.FaultPlan(
    seed=3,
    build_rate=0.2,
    hang_rate=0.4,
    counter_rate=0.2,
    verify_rate=0.3,
    transient_fraction=0.7,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    faults.clear()
    obs_trace.install(None)
    yield
    faults.clear()
    obs_trace.install(None)


class FakeClock:
    """Deterministic clock: each read advances by a fixed step."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# -- tracing ----------------------------------------------------------------


class TestTracer:
    def test_span_paths_number_occurrences_per_parent(self):
        t = obs_trace.Tracer(clock=FakeClock())
        with t.span("sweep"):
            with t.span("run"):
                pass
            with t.span("run"):
                pass
        with t.span("sweep"):
            with t.span("run"):
                pass
        paths = [s.path for s in t.spans]
        assert paths == [
            "sweep#0",
            "sweep#0/run#0",
            "sweep#0/run#1",
            "sweep#1",
            "sweep#1/run#0",
        ]

    def test_ids_are_path_hashes_and_parents_link_up(self):
        t = obs_trace.Tracer(clock=FakeClock())
        with t.span("a") as outer:
            with t.span("b") as inner:
                pass
        assert outer.span_id == obs_trace.span_id_for_path("a#0")
        assert inner.parent_id == outer.span_id
        assert inner.depth == outer.depth + 1

    def test_traces_are_byte_identical_under_a_fake_clock(self):
        def make_trace():
            t = obs_trace.Tracer(clock=FakeClock(), label="test")
            with obs_trace.tracing(t):
                with obs_trace.span("compile", unit="main") as sp:
                    sp.set(instructions=42)
                    with obs_trace.span("parse"):
                        pass
                obs_trace.instant("checkpoint", index=3)
            return t.to_json()

        assert make_trace() == make_trace()

    def test_chrome_trace_passes_schema_validation(self):
        t = obs_trace.Tracer(clock=FakeClock())
        with t.span("outer"):
            t.instant("tick")
            with t.span("inner"):
                pass
        assert validate_trace(t.to_chrome_trace()) == []

    def test_validator_rejects_non_traces(self):
        assert validate_trace([]) != []
        assert validate_trace({"traceEvents": [{"ph": "Z"}]}) != []

    def test_exceptions_mark_the_span_and_propagate(self):
        t = obs_trace.Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with t.span("work"):
                raise ValueError("boom")
        assert t.spans[0].attrs["error"] == "ValueError"
        assert t.spans[0].duration is not None

    def test_default_recorder_is_a_shared_noop(self):
        assert obs_trace.active() is obs_trace.NULL_TRACER
        sp = obs_trace.span("anything", whatever=1)
        assert sp is obs_trace.NULL_SPAN
        assert sp.set(x=1) is sp
        with sp:
            pass

    def test_tracing_scope_installs_and_restores(self):
        t = obs_trace.Tracer(clock=FakeClock())
        with obs_trace.tracing(t):
            assert obs_trace.active() is t
        assert obs_trace.active() is obs_trace.NULL_TRACER

    def test_pipeline_emits_the_expected_span_tree(self):
        exp = Experiment(workloads.get(WORKLOAD))
        t = obs_trace.Tracer(clock=FakeClock())
        with obs_trace.tracing(t):
            exp.run(SETUPS[0])
        names = {s.name for s in t.spans}
        assert {"compile", "unit", "parse", "codegen", "link", "load", "run"} <= names
        run = next(s for s in t.spans if s.name == "run")
        assert run.attrs["cycles"] > 0
        load = next(s for s in t.spans if s.name == "load")
        assert load.attrs["env_bytes"] == SETUPS[0].environment().total_bytes
        assert load.attrs["sp_start"] > 0
        # compile nests under run's build; every span has a valid parent
        by_id = {s.span_id: s for s in t.spans}
        for s in t.spans:
            if s.parent_id is not None:
                assert s.parent_id in by_id


# -- metrics ----------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_semantics(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.gauge("g").set(5)
        for v in (1.0, 3.0):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 5}
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["mean"] == 2.0
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 3.0

    def test_counters_cannot_decrease(self):
        with pytest.raises(ValueError):
            obs_metrics.MetricsRegistry().counter("c").inc(-1)

    def test_a_name_is_owned_by_its_first_kind(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_counters_view_is_sorted_and_counters_only(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc(4)
        reg.gauge("m").set(1)
        assert list(reg.counters().items()) == [("a", 4), ("z", 1)]

    def test_scoped_registry_isolates_accounting(self):
        before = obs_metrics.registry()
        with obs_metrics.scoped() as reg:
            assert obs_metrics.registry() is reg
            obs_metrics.counter("scoped.events").inc()
            assert reg.counters() == {"scoped.events": 1}
        assert obs_metrics.registry() is before
        assert "scoped.events" not in obs_metrics.registry().counters()

    def test_pipeline_accounts_builds_runs_and_cache_hits(self):
        exp = Experiment(workloads.get(WORKLOAD))
        with obs_metrics.scoped() as reg:
            exp.run(SETUPS[0])
            exp.run(SETUPS[0])  # cache hit
        counters = reg.counters()
        assert counters["experiment.builds"] == 1
        assert counters["engine.runs"] == 1
        assert counters["experiment.run_cache_hits"] == 1
        assert counters["engine.instructions"] > 0
        snap = reg.snapshot()
        assert snap["histograms"]["engine.run_seconds"]["count"] == 1


# -- manifests --------------------------------------------------------------


class TestManifest:
    def build(self, tmp_path, artifacts=None):
        exp = shared_experiment(WORKLOAD)
        return obs_manifest.build_manifest(
            experiment=exp,
            setups=SETUPS,
            runner_config=RunnerConfig(jobs=2, backoff_seed=9),
            fault_plan=NOISY_PLAN,
            metrics=obs_metrics.MetricsRegistry().snapshot(),
            artifacts=artifacts,
            note="unit test",
        )

    def test_manifest_names_the_full_setup_story(self, tmp_path):
        m = self.build(tmp_path)
        assert obs_manifest.validate_manifest(m) == []
        assert m["experiment"]["workload"] == WORKLOAD
        assert [s["env_bytes"] for s in m["setups"]] == [100, 116, 132, 148]
        assert m["toolchain"]["profiles"] == ["gcc"]
        assert m["machines"] == ["core2"]
        assert m["seeds"] == {"input": 0, "backoff": 9, "faults": 3}
        assert m["fault_plan"]["hang_rate"] == NOISY_PLAN.hang_rate
        assert m["sweep_id"] == sweep_id(WORKLOAD, "test", 0, SETUPS)

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "m.json")
        m = self.build(tmp_path)
        obs_manifest.save_manifest(path, m)
        assert obs_manifest.load_manifest(path) == json.loads(json.dumps(m))

    def test_artifact_checksums_are_validated(self, tmp_path):
        artifact = tmp_path / "trace.json"
        artifact.write_text("{}")
        m = self.build(
            tmp_path,
            artifacts={
                str(artifact): obs_manifest.file_checksum(str(artifact))
            },
        )
        assert obs_manifest.validate_manifest(m) == []
        m["artifacts"][str(artifact)] = "nothex"
        assert obs_manifest.validate_manifest(m) != []

    def test_load_rejects_invalid_documents(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"format": "wrong"}, fh)
        with pytest.raises(ArchiveCorruption):
            obs_manifest.load_manifest(path)

    def test_archive_v2_round_trips_the_manifest(self, tmp_path):
        exp = shared_experiment(WORKLOAD)
        measurements = [exp.run(s) for s in SETUPS[:2]]
        manifest = obs_manifest.build_manifest(
            experiment=exp, setups=SETUPS[:2], note="archive test"
        )
        path = str(tmp_path / "archive.json")
        save_measurements(path, measurements, manifest=manifest)
        loaded, loaded_manifest = load_archive(path)
        assert [m.cycles for m in loaded] == [m.cycles for m in measurements]
        assert loaded_manifest["note"] == "archive test"
        assert obs_manifest.validate_manifest(loaded_manifest) == []

    def test_archive_without_manifest_loads_none(self, tmp_path):
        exp = shared_experiment(WORKLOAD)
        path = str(tmp_path / "bare.json")
        save_measurements(path, [exp.run(SETUPS[0])])
        _, manifest = load_archive(path)
        assert manifest is None


# -- progress + runner integration ------------------------------------------


class RecordingReporter(obs_progress.ProgressReporter):
    def __init__(self):
        self.events = []

    def sweep_started(self, total, resumed, sweep=""):
        self.events.append(("started", total, resumed))

    def setup_finished(self, index, setup, status, attempts=1):
        self.events.append(("finished", index, status, attempts))

    def retry(self, index, setup, attempt, error_type, message):
        self.events.append(("retry", index, error_type))

    def quarantined(self, index, setup, error_type, fate, attempts, message):
        self.events.append(("quarantined", index, error_type))

    def sweep_finished(self, report):
        self.events.append(("done", report.measured))


def run_sweep(jobs=1, plan=None, journal=None, progress=None, exp=None):
    if exp is None:
        exp = Experiment(workloads.get(WORKLOAD))
    runner = SweepRunner(
        exp,
        RunnerConfig(jobs=jobs, max_retries=2, backoff_base=0.001),
        journal_path=journal,
        fault_plan=plan,
        progress=progress,
        sleep=lambda s: None,
    )
    return runner.run(SETUPS)


class TestRunnerObservability:
    def test_progress_sees_every_setup_exactly_once(self):
        rep = RecordingReporter()
        result = run_sweep(progress=rep)
        assert rep.events[0] == ("started", len(SETUPS), 0)
        assert rep.events[-1] == ("done", len(SETUPS))
        finished = [e for e in rep.events if e[0] == "finished"]
        assert sorted(e[1] for e in finished) == list(range(len(SETUPS)))
        assert result.report.complete

    def test_retries_and_quarantines_surface_as_events(self):
        rep = RecordingReporter()
        result = run_sweep(plan=NOISY_PLAN, progress=rep)
        retries = [e for e in rep.events if e[0] == "retry"]
        quarantines = [e for e in rep.events if e[0] == "quarantined"]
        # The seeded plan must actually exercise both paths.
        assert len(retries) == result.report.retries > 0
        assert len(quarantines) == len(result.report.quarantined) > 0
        terminal = [e for e in rep.events if e[0] in ("finished", "quarantined")]
        assert len(terminal) == len(SETUPS)

    def test_parallel_sweep_emits_the_same_terminal_events(self):
        serial, parallel = RecordingReporter(), RecordingReporter()
        run_sweep(plan=NOISY_PLAN, progress=serial)
        run_sweep(plan=NOISY_PLAN, progress=parallel, jobs=2)
        def terminal(rep):
            return sorted(
                e for e in rep.events if e[0] in ("finished", "quarantined")
            )
        assert terminal(serial) == terminal(parallel)

    def test_report_metrics_match_the_accounting(self):
        result = run_sweep(plan=NOISY_PLAN)
        report = result.report
        metrics = report.metrics
        assert metrics["sweep.setups_measured"] == report.measured
        assert metrics["sweep.setups_quarantined"] == len(report.quarantined)
        assert metrics["sweep.retries"] == report.retries
        assert (
            metrics["sweep.attempts"]
            == report.measured + len(report.quarantined) + report.retries
        )

    def test_report_metrics_identical_serial_vs_parallel(self):
        a = run_sweep(plan=NOISY_PLAN).report
        b = run_sweep(plan=NOISY_PLAN, jobs=2).report
        assert a.metrics == b.metrics
        assert a.to_json() == b.to_json()

    def test_sweep_traces_nest_setups_and_runs(self):
        t = obs_trace.Tracer(clock=FakeClock())
        with obs_trace.tracing(t):
            run_sweep()
        sweep = next(s for s in t.spans if s.name == "sweep")
        assert sweep.attrs["measured"] == len(SETUPS)
        setup_spans = [s for s in t.spans if s.name == "setup"]
        assert len(setup_spans) == len(SETUPS)
        assert all(s.parent_id == sweep.span_id for s in setup_spans)
        assert all(s.attrs["status"] == "measured" for s in setup_spans)

    def test_journal_records_a_metrics_snapshot(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        result = run_sweep(journal=path)
        journal = Journal(path, sweep_id(WORKLOAD, "test", 0, SETUPS))
        done = journal.load()
        assert len(done) == len(SETUPS)
        kinds = [a["kind"] for a in journal.aux]
        assert kinds == ["metrics"]
        snap = journal.aux[0]["data"]["snapshot"]
        assert (
            snap["counters"]["sweep.setups_measured"]
            == result.report.measured
        )

    def test_kill_and_resume_accounts_cached_vs_rerun(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        first = run_sweep(journal=path)
        assert first.report.measured == len(SETUPS)
        second = run_sweep(journal=path)
        assert second.report.resumed == len(SETUPS)
        assert second.report.measured == 0
        metrics = second.report.metrics
        assert metrics == {"sweep.setups_resumed": len(SETUPS)}
        # Both sweeps' snapshots survive in the journal, in order.
        journal = Journal(path, sweep_id(WORKLOAD, "test", 0, SETUPS))
        journal.load()
        snaps = [a["data"]["snapshot"]["counters"] for a in journal.aux]
        assert snaps[0]["sweep.setups_measured"] == len(SETUPS)
        assert snaps[1]["sweep.setups_resumed"] == len(SETUPS)

    def test_aux_records_survive_journal_compaction(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_sweep(journal=path)
        with open(path, "a") as fh:
            fh.write('{"torn": ')  # simulated mid-write kill
        journal = Journal(path, sweep_id(WORKLOAD, "test", 0, SETUPS))
        assert len(journal.load()) == len(SETUPS)
        assert len(journal.aux) == 1
        # The torn line was compacted away; aux record still present.
        with open(path) as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 1 + len(SETUPS) + 1


# -- per-PC profiling --------------------------------------------------------


class TestPCProfiling:
    def test_pc_cycles_sum_to_total_cycles(self, small_exe_o2):
        total = run_exe(small_exe_o2).counters.cycles
        image = load_process(small_exe_o2, environment=Environment.typical())
        profiled = execute(
            image, get_machine("core2").build(), profile_pcs=True
        )
        assert profiled.pc_cycles
        assert sum(profiled.pc_cycles) == pytest.approx(total)

    def test_pc_cycles_empty_when_disabled(self, small_exe_o2):
        assert run_exe(small_exe_o2).pc_cycles == ()

    def test_pc_profile_diff_localizes_the_bias(self):
        exp = shared_experiment(WORKLOAD)
        a = ExperimentalSetup(env_bytes=100)
        b = ExperimentalSetup(env_bytes=116)
        diff = pc_profile_diff(exp, a, b)
        assert diff.total_delta == pytest.approx(
            exp.run(b).cycles - exp.run(a).cycles
        )
        assert sum(p.delta for p in diff.pcs) == pytest.approx(diff.total_delta)
        exe = exp.build(a)
        names = {f.name for f in exe.placed}
        assert all(p.function in names for p in diff.pcs)
        assert all(exe.addrs[p.index] == p.addr for p in diff.ranked(5))

    def test_pc_profile_diff_requires_a_shared_build(self):
        exp = shared_experiment(WORKLOAD)
        with pytest.raises(ValueError):
            pc_profile_diff(
                exp,
                ExperimentalSetup(opt_level=2),
                ExperimentalSetup(opt_level=3),
            )


# -- overhead guard ----------------------------------------------------------


class TestDisabledOverhead:
    def test_disabled_observability_does_no_recording(self):
        exp = Experiment(workloads.get(WORKLOAD))
        assert obs_trace.active() is obs_trace.NULL_TRACER
        m = exp.run(SETUPS[0])
        assert obs_trace.NULL_TRACER.spans == ()
        assert m.cycles > 0

    def test_default_engine_path_is_not_slower_than_instrumented(
        self, small_exe_o2
    ):
        """The disabled path must not secretly pay for profiling: the
        default execute (no per-PC attribution, null tracer) should be
        at most marginally slower than the fully instrumented one,
        which does strictly more bookkeeping per instruction."""
        import time as _time

        machine = get_machine("core2").build()

        def best_of(profile_pcs, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                image = load_process(small_exe_o2, Environment.typical())
                t0 = _time.perf_counter()
                execute(image, machine, profile_pcs=profile_pcs)
                best = min(best, _time.perf_counter() - t0)
            return best

        best_of(False, repeats=1)  # warm-up
        disabled = best_of(False)
        instrumented = best_of(True)
        # Generous margin: the guard catches structural regressions
        # (accidental always-on profiling), not scheduler noise.
        assert disabled <= instrumented * 1.5 + 0.01
