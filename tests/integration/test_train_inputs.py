"""Integration: larger input classes still verify against the references.

The "test" class is exercised everywhere; these runs catch scaling bugs
(buffer sizes, wraparound at larger counts) in the "train" class for a
representative subset.  "ref" classes are exercised by the benchmark
harness when users opt in.
"""

import pytest

from repro import workloads
from repro.arch import execute, get_machine
from repro.os import Environment, load_process
from repro.toolchain import compile_program, link

#: Heavyweight end-to-end sweeps: run with the full suite, skipped
#: by the fast inner loop (-m 'not slow').
pytestmark = pytest.mark.slow


#: A mix of byte-stream, DP, memory-bound and numeric workloads.
SUBSET = ("bzip2", "hmmer", "mcf", "sphinx3", "libquantum")


@pytest.mark.parametrize("name", SUBSET)
def test_train_input_verifies(name):
    wl = workloads.get(name)
    bindings = wl.input_for("train", seed=0)
    expected = wl.expected(bindings)
    exe = link(compile_program(dict(wl.sources), opt_level=2))
    img = load_process(exe, Environment.typical(), inputs=bindings)
    res = execute(img, get_machine("core2").build())
    assert res.exit_value == expected


def test_train_is_bigger_than_test():
    wl = workloads.get("bzip2")
    exe = link(compile_program(dict(wl.sources), opt_level=2))

    def instructions(size):
        bindings = wl.input_for(size, seed=0)
        img = load_process(exe, Environment.typical(), inputs=bindings)
        return execute(
            img, get_machine("core2").build()
        ).counters.instructions

    assert instructions("train") > instructions("test")
