"""Integration: every workload self-checks against its Python reference.

The O0/O3 x gcc differential for every workload; icc spot checks on a
representative subset (full icc coverage runs in the validation tool and
the property tests cover profile agreement on random programs).
"""

import pytest

from repro import workloads
from repro.arch import execute, get_machine
from repro.os import Environment, load_process
from repro.toolchain import compile_program, link

#: Heavyweight end-to-end sweeps: run with the full suite, skipped
#: by the fast inner loop (-m 'not slow').
pytestmark = pytest.mark.slow


ALL_NAMES = workloads.all_names()


def _run(wl, opt_level, profile="gcc", seed=0):
    bindings = wl.input_for("test", seed)
    exe = link(
        compile_program(dict(wl.sources), opt_level=opt_level, profile=profile)
    )
    img = load_process(exe, Environment.typical(), inputs=bindings)
    res = execute(img, get_machine("core2").build())
    return res, wl.expected(bindings)


class TestSuiteDefinitions:
    def test_twelve_workloads(self):
        assert len(ALL_NAMES) == 12

    def test_spec_counterpart_names(self):
        assert set(ALL_NAMES) == {
            "perlbench",
            "bzip2",
            "gcc",
            "mcf",
            "milc",
            "gobmk",
            "hmmer",
            "sjeng",
            "libquantum",
            "h264ref",
            "lbm",
            "sphinx3",
        }

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_multi_module_sources(self, name):
        wl = workloads.get(name)
        assert len(wl.sources) >= 2, "link-order studies need 2+ modules"

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_input_classes_scale(self, name):
        wl = workloads.get(name)
        for size in ("test", "train", "ref"):
            assert wl.input_for(size, 0)  # constructible

    def test_unknown_workload_rejected(self):
        with pytest.raises(workloads.WorkloadError):
            workloads.get("nonexistent")

    def test_unknown_size_rejected(self):
        with pytest.raises(workloads.WorkloadError):
            workloads.get("lbm").input_for("huge")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_inputs_deterministic_per_seed(self, name):
        wl = workloads.get(name)
        assert wl.input_for("test", 5) == wl.input_for("test", 5)


class TestSuiteCorrectness:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_o2_matches_reference(self, name):
        wl = workloads.get(name)
        res, expected = _run(wl, 2)
        assert res.exit_value == expected

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_o3_matches_reference(self, name):
        wl = workloads.get(name)
        res, expected = _run(wl, 3)
        assert res.exit_value == expected

    @pytest.mark.parametrize("name", ["perlbench", "bzip2", "sjeng", "lbm"])
    def test_icc_matches_reference(self, name):
        wl = workloads.get(name)
        res, expected = _run(wl, 3, profile="icc")
        assert res.exit_value == expected

    @pytest.mark.parametrize("name", ["sphinx3", "mcf", "libquantum"])
    def test_second_seed_matches_reference(self, name):
        wl = workloads.get(name)
        res, expected = _run(wl, 2, seed=1)
        assert res.exit_value == expected
