"""Integration: the full intervention toolbox on the headline workload."""

import pytest

from repro.analysis import (
    confirm_function_alignment_cause,
    confirm_lsd_cause,
)
from repro.core.bias import sample_link_orders

#: Heavyweight end-to-end sweeps: run with the full suite, skipped
#: by the fast inner loop (-m 'not slow').
pytestmark = pytest.mark.slow



@pytest.fixture(scope="module")
def o3(base_setup):
    return base_setup.with_changes(opt_level=3)


ENV_SIZES = list(range(100, 196, 8))


class TestLsdIntervention:
    def test_disabling_lsd_removes_the_flip(
        self, perlbench_experiment, base_setup, o3
    ):
        """The O2/O3 conclusion flips only because the LSD keeps O2's
        tight loops fetch-free while O3's unrolled loops pay full price.
        Without the LSD, both pay — O3's instruction advantage dominates
        and the conclusion stabilizes (see also bench A2)."""
        result = confirm_lsd_cause(
            perlbench_experiment, base_setup, o3, env_sizes=ENV_SIZES
        )
        assert result.bias_before.flips
        assert not result.bias_after.flips
        # Without the LSD, O3 wins in *every* environment.
        assert result.bias_after.stats.minimum > 1.0


class TestFunctionAlignmentIntervention:
    def test_coarse_alignment_reduces_link_bias(
        self, perlbench_experiment, base_setup, o3
    ):
        orders = sample_link_orders(
            perlbench_experiment.workload.module_names(), count=6
        )
        result = confirm_function_alignment_cause(
            perlbench_experiment,
            base_setup.with_changes(function_alignment=1),
            o3.with_changes(function_alignment=1),
            orders=orders,
            alignment=64,
        )
        before = (
            result.bias_before.stats.maximum
            - result.bias_before.stats.minimum
        )
        after = (
            result.bias_after.stats.maximum - result.bias_after.stats.minimum
        )
        # Cache-line-aligned functions remove the fine-phase component.
        assert after < before
