"""Integration: the full compile -> link -> load -> execute pipeline."""

import pytest

from repro.arch import execute, get_machine
from repro.os import Environment, load_process
from repro.toolchain import compile_program, link

from tests.conftest import SMALL_EXPECTED, SMALL_SOURCES


@pytest.mark.parametrize("opt_level", [0, 1, 2, 3])
@pytest.mark.parametrize("profile", ["gcc", "icc"])
def test_all_configs_compute_the_same_answer(opt_level, profile):
    modules = compile_program(SMALL_SOURCES, opt_level=opt_level, profile=profile)
    exe = link(modules)
    img = load_process(exe, Environment.typical())
    res = execute(img, get_machine("core2").build())
    assert res.exit_value == SMALL_EXPECTED


def test_optimization_reduces_instructions():
    counts = {}
    for level in (0, 1, 2, 3):
        exe = link(compile_program(SMALL_SOURCES, opt_level=level))
        img = load_process(exe, Environment.typical())
        counts[level] = execute(
            img, get_machine("core2").build()
        ).counters.instructions
    assert counts[0] > counts[1] >= counts[2]


def test_optimization_reduces_cycles_o0_to_o2():
    cycles = {}
    for level in (0, 2):
        exe = link(compile_program(SMALL_SOURCES, opt_level=level))
        img = load_process(exe, Environment.typical())
        cycles[level] = execute(img, get_machine("core2").build()).counters.cycles
    assert cycles[2] < cycles[0]


def test_multi_module_cross_calls_resolve():
    sources = {
        "a": "func fa(x) { return fb(x) + 1; }",
        "b": "func fb(x) { return fc(x) + 2; }",
        "c": "func fc(x) { return x * 10; }",
        "main": "func main() { return fa(4); }",
    }
    exe = link(compile_program(sources))
    img = load_process(exe, Environment.typical())
    assert execute(img, get_machine("core2").build()).exit_value == 43


def test_icc_emits_padding_but_same_answer():
    gcc_exe = link(compile_program(SMALL_SOURCES, opt_level=2, profile="gcc"))
    icc_exe = link(compile_program(SMALL_SOURCES, opt_level=2, profile="icc"))
    for exe in (gcc_exe, icc_exe):
        img = load_process(exe, Environment.typical())
        assert (
            execute(img, get_machine("core2").build()).exit_value
            == SMALL_EXPECTED
        )
    # icc's aligned loop heads imply NOP padding somewhere in the image.
    assert any(op == 33 for op in icc_exe.ops)
    assert not any(op == 33 for op in gcc_exe.ops)
