"""Integration: the paper's methodology end-to-end.

Link-order bias, setup randomization (the paper's remedy), and the
causal-intervention workflow on live measurements.
"""

import pytest

from repro import workloads
from repro.analysis import confirm_stack_alignment_cause as stack_alignment_cause
from repro.core import Experiment
from repro.core.bias import link_order_study
from repro.core.randomization import (
    evaluate_with_randomization,
    interval_vs_setup_count,
)

#: Heavyweight end-to-end sweeps: run with the full suite, skipped
#: by the fast inner loop (-m 'not slow').
pytestmark = pytest.mark.slow



@pytest.fixture(scope="module")
def exp():
    # sphinx3: fastest workload; bias magnitudes are small but nonzero.
    return Experiment(workloads.get("sphinx3"), size="test", seed=0)


class TestLinkOrderStudy:
    def test_link_order_changes_runtime(self, exp, base_setup):
        o3 = base_setup.with_changes(opt_level=3)
        study = link_order_study(exp, base_setup, o3, max_orders=6)
        assert len(set(study.base_cycles)) > 1, (
            "relinking must move the measured runtime"
        )

    def test_all_orders_verified(self, exp, base_setup):
        o3 = base_setup.with_changes(opt_level=3)
        study = link_order_study(exp, base_setup, o3, max_orders=4)
        assert len(study.points) == 4
        assert {m.exit_value for m in study.base_measurements} == {
            exp.expected
        }


class TestRandomizationProtocol:
    def test_protocol_produces_interval(self, exp, base_setup):
        o3 = base_setup.with_changes(opt_level=3)
        ev = evaluate_with_randomization(exp, base_setup, o3, n_setups=6, seed=3)
        assert len(ev.speedups) == 6
        assert ev.interval.lo < ev.mean < ev.interval.hi
        assert ev.verdict in ("beneficial", "harmful", "inconclusive")

    def test_deterministic_given_seed(self, exp, base_setup):
        o3 = base_setup.with_changes(opt_level=3)
        a = evaluate_with_randomization(exp, base_setup, o3, n_setups=4, seed=9)
        b = evaluate_with_randomization(exp, base_setup, o3, n_setups=4, seed=9)
        assert a.speedups == b.speedups

    def test_interval_counts_are_nested_prefixes(self, exp, base_setup):
        # CI width is not monotone in n for one concrete sample (it also
        # depends on the sample std), so assert the protocol's contract
        # instead: estimates for larger counts extend the same sequence.
        o3 = base_setup.with_changes(opt_level=3)
        rows = interval_vs_setup_count(
            exp, base_setup, o3, counts=(3, 6, 12), seed=2
        )
        assert [n for n, _ in rows] == [3, 6, 12]
        s3, s6, s12 = (ev.speedups for _, ev in rows)
        assert s6[:3] == s3
        assert s12[:6] == s6

    def test_critical_value_shrinks_with_setups(self):
        # The statistical reason more setups help: the t multiplier and
        # the 1/sqrt(n) factor both shrink.
        import math

        from repro.core.stats import t_ppf

        def half_width_factor(n):
            return t_ppf(0.975, n - 1) / math.sqrt(n)

        factors = [half_width_factor(n) for n in (3, 6, 12, 24)]
        assert factors == sorted(factors, reverse=True)

    def test_progress_callback(self, exp, base_setup):
        o3 = base_setup.with_changes(opt_level=3)
        seen = []
        evaluate_with_randomization(
            exp,
            base_setup,
            o3,
            n_setups=3,
            seed=1,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_too_few_setups_rejected(self, exp, base_setup):
        with pytest.raises(ValueError):
            evaluate_with_randomization(
                exp, base_setup, base_setup, n_setups=1
            )


class TestCausalIntervention:
    def test_stack_alignment_intervention_removes_env_bias(
        self, exp, base_setup
    ):
        """Force-aligning sp is the paper's causal confirmation for the
        environment-size effect: the bias must (mostly) vanish."""
        o3 = base_setup.with_changes(opt_level=3)
        result = stack_alignment_cause(
            exp,
            base_setup,
            o3,
            env_sizes=range(100, 196, 4),
            aligned_to=64,
        )
        before_span = (
            result.bias_before.stats.maximum - result.bias_before.stats.minimum
        )
        after_span = (
            result.bias_after.stats.maximum - result.bias_after.stats.minimum
        )
        assert after_span < before_span
        assert result.bias_removed_fraction > 0.3
