"""The headline acceptance criterion (DESIGN.md, experiment F3).

The paper's Figure 3: the measured O3-over-O2 speedup of perlbench on
Core 2 depends on the UNIX environment size strongly enough to *flip the
conclusion* — some environment sizes say O3 helps, others say it hurts.
These tests assert that reproduction, not just print it.
"""

import pytest

from repro.core.bias import env_size_study

#: Heavyweight end-to-end sweeps: run with the full suite, skipped
#: by the fast inner loop (-m 'not slow').
pytestmark = pytest.mark.slow


#: One full stack-alignment period (64 bytes) sampled at 4-byte steps,
#: at two distant base offsets — enough to see both alignment regimes.
ENV_SIZES = list(range(100, 164, 4)) + list(range(1000, 1064, 4))


@pytest.fixture(scope="module")
def study(perlbench_experiment, base_setup):
    o3 = base_setup.with_changes(opt_level=3)
    return env_size_study(perlbench_experiment, base_setup, o3, ENV_SIZES)


def test_speedup_conclusion_flips_with_environment_size(study):
    report = study.speedup_bias()
    assert report.flips, (
        "expected the O3-vs-O2 conclusion to depend on environment size; "
        f"got speedups in [{report.stats.minimum:.4f}, "
        f"{report.stats.maximum:.4f}]"
    )


def test_bias_magnitude_is_significant(study):
    # The paper's Figure 3 swings ~20% end to end; require at least a
    # few percent so the flip is not a rounding artifact.
    report = study.speedup_bias()
    assert report.magnitude > 1.02


def test_raw_runtimes_also_biased(study):
    # Not only the ratio: each configuration's own runtime moves.
    assert study.base_bias().magnitude > 1.05
    assert study.treatment_bias().magnitude > 1.05


def test_results_stay_correct_throughout(study):
    # Every measurement in the sweep was verified against the reference
    # (Experiment.run raises otherwise); double-check exit values agree.
    exits = {m.exit_value for m in study.base_measurements}
    exits |= {m.exit_value for m in study.treatment_measurements}
    assert len(exits) == 1


def test_same_setup_same_conclusion(perlbench_experiment, base_setup):
    # Determinism: the bias is a function of the setup, not noise.
    o3 = base_setup.with_changes(opt_level=3)
    s1 = perlbench_experiment.speedup(
        base_setup.with_changes(env_bytes=132), o3.with_changes(env_bytes=132)
    )
    s2 = perlbench_experiment.speedup(
        base_setup.with_changes(env_bytes=132), o3.with_changes(env_bytes=132)
    )
    assert s1 == s2
