"""Integration: crash-consistency harness (tools/crashsim.py).

Each test runs a *real* sweep in a subprocess, SIGKILLs it at a
deterministic barrier (or SIGSTOPs the whole process group), resumes,
and asserts recovery is byte-identical to an uninterrupted run — the
acceptance criterion of the storage-chaos subsystem.  The harness does
all the asserting; these tests check its verdict and exercise exactly
the CI crash-smoke entry points.
"""

import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
CRASHSIM = os.path.join(REPO, "tools", "crashsim.py")


def run_crashsim(args, tmp_path):
    proc = subprocess.run(
        [sys.executable, CRASHSIM] + args + ["--workdir", str(tmp_path)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert proc.returncode == 0, (
        f"crashsim {' '.join(args)} failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return proc.stdout


@pytest.mark.parametrize(
    "barrier", ["journal:3", "store-put:2", "archive:1"]
)
def test_sigkill_at_barrier_then_resume_is_byte_identical(
    barrier, tmp_path
):
    out = run_crashsim(["cycle", "--barrier", barrier], tmp_path)
    assert f"PASS {barrier}" in out


def test_parent_sigstop_causes_no_heartbeat_false_positives(tmp_path):
    out = run_crashsim(["sigstop"], tmp_path)
    assert "PASS sigstop" in out


def test_bad_barrier_is_rejected_loudly(tmp_path):
    proc = subprocess.run(
        [sys.executable, CRASHSIM, "cycle", "--barrier", "meteor:1"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode != 0
    assert "bad barrier" in proc.stderr
